"""Tests for Boolean graph algebra, including at-least-k-of-n."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import graph_ops as ops
from repro.core.generators import erdos_renyi
from repro.core.graph import Graph
from repro.errors import GraphError, ParameterError


def g_from(n, edges):
    return Graph.from_edges(n, edges)


class TestBasicOps:
    def test_intersection(self):
        a = g_from(4, [(0, 1), (1, 2)])
        b = g_from(4, [(1, 2), (2, 3)])
        r = ops.intersection([a, b])
        assert list(r.edges()) == [(1, 2)]
        r.validate()

    def test_intersection_single(self):
        a = g_from(3, [(0, 1)])
        assert ops.intersection([a]) == a

    def test_union(self):
        a = g_from(4, [(0, 1)])
        b = g_from(4, [(2, 3)])
        r = ops.union([a, b])
        assert r.m == 2
        r.validate()

    def test_difference(self):
        a = g_from(4, [(0, 1), (1, 2)])
        b = g_from(4, [(1, 2)])
        r = ops.difference(a, b)
        assert list(r.edges()) == [(0, 1)]

    def test_symmetric_difference(self):
        a = g_from(4, [(0, 1), (1, 2)])
        b = g_from(4, [(1, 2), (2, 3)])
        r = ops.symmetric_difference(a, b)
        assert list(r.edges()) == [(0, 1), (2, 3)]

    def test_empty_list_rejected(self):
        with pytest.raises(ParameterError):
            ops.union([])

    def test_mismatched_universe_rejected(self):
        with pytest.raises(GraphError):
            ops.union([Graph(3), Graph(4)])


class TestAtLeastK:
    def test_k1_is_union(self):
        gs = [g_from(4, [(0, 1)]), g_from(4, [(2, 3)])]
        assert ops.at_least_k_of_n(gs, 1) == ops.union(gs)

    def test_kn_is_intersection(self):
        gs = [g_from(4, [(0, 1), (1, 2)]), g_from(4, [(1, 2)])]
        assert ops.at_least_k_of_n(gs, 2) == ops.intersection(gs)

    def test_majority_vote(self):
        gs = [
            g_from(4, [(0, 1), (1, 2)]),
            g_from(4, [(0, 1), (2, 3)]),
            g_from(4, [(0, 1), (1, 2)]),
        ]
        r = ops.at_least_k_of_n(gs, 2)
        assert list(r.edges()) == [(0, 1), (1, 2)]

    def test_k_out_of_range(self):
        gs = [Graph(3)]
        with pytest.raises(ParameterError):
            ops.at_least_k_of_n(gs, 0)
        with pytest.raises(ParameterError):
            ops.at_least_k_of_n(gs, 2)

    def test_no_edge_reaches_k(self):
        gs = [g_from(3, [(0, 1)]), g_from(3, [(1, 2)]), g_from(3, [])]
        r = ops.at_least_k_of_n(gs, 2)
        assert r.m == 0

    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5])
    def test_against_explicit_count(self, k):
        gs = [erdos_renyi(15, 0.4, seed=s) for s in range(5)]
        r = ops.at_least_k_of_n(gs, k)
        for u in range(15):
            for v in range(u + 1, 15):
                votes = sum(g.has_edge(u, v) for g in gs)
                assert r.has_edge(u, v) == (votes >= k), (u, v, votes, k)
        r.validate()


class TestAgreement:
    def test_identical_graphs(self):
        a = erdos_renyi(10, 0.3, seed=1)
        assert ops.edge_agreement(a, a) == 1.0

    def test_disjoint_graphs(self):
        a = g_from(4, [(0, 1)])
        b = g_from(4, [(2, 3)])
        assert ops.edge_agreement(a, b) == 0.0

    def test_empty_graphs_agree(self):
        assert ops.edge_agreement(Graph(4), Graph(4)) == 1.0

    def test_half_overlap(self):
        a = g_from(4, [(0, 1), (1, 2)])
        b = g_from(4, [(1, 2), (2, 3)])
        assert ops.edge_agreement(a, b) == pytest.approx(1 / 3)


# ---------------------------------------------------------------------------
# properties
# ---------------------------------------------------------------------------

@st.composite
def graph_family(draw):
    n = draw(st.integers(min_value=2, max_value=20))
    n_graphs = draw(st.integers(min_value=1, max_value=6))
    pairs = st.tuples(
        st.integers(min_value=0, max_value=n - 1),
        st.integers(min_value=0, max_value=n - 1),
    ).filter(lambda p: p[0] != p[1])
    graphs = [
        Graph.from_edges(n, draw(st.lists(pairs, max_size=30)))
        for _ in range(n_graphs)
    ]
    return graphs


@settings(max_examples=30, deadline=None)
@given(graph_family(), st.data())
def test_at_least_k_matches_vote_counting(gs, data):
    k = data.draw(st.integers(min_value=1, max_value=len(gs)))
    r = ops.at_least_k_of_n(gs, k)
    n = gs[0].n
    for u in range(n):
        for v in range(u + 1, n):
            votes = sum(g.has_edge(u, v) for g in gs)
            assert r.has_edge(u, v) == (votes >= k)


@settings(max_examples=30, deadline=None)
@given(graph_family())
def test_at_least_k_monotone_in_k(gs):
    prev = None
    for k in range(1, len(gs) + 1):
        cur = ops.at_least_k_of_n(gs, k)
        if prev is not None:
            # raising k can only remove edges
            assert ops.difference(cur, prev).m == 0
        prev = cur


@settings(max_examples=30, deadline=None)
@given(graph_family())
def test_union_intersection_sandwich(gs):
    uni = ops.union(gs)
    inter = ops.intersection(gs)
    assert ops.difference(inter, uni).m == 0
    assert uni.m >= inter.m
