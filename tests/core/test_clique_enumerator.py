"""Tests for the Clique Enumerator — the paper's core algorithm."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clique_enumerator import (
    build_sublists_from_k_cliques,
    enumerate_maximal_cliques,
)
from repro.core.counters import OpCounters
from repro.core.generators import (
    complete_graph,
    erdos_renyi,
    overlapping_cliques,
    path_graph,
    planted_clique,
)
from repro.core.graph import Graph
from repro.core.memory_model import check_paper_recurrences
from repro.errors import BudgetExceeded, ParameterError
from tests.conftest import nx_maximal_cliques


class TestBasics:
    def test_empty_graph(self):
        res = enumerate_maximal_cliques(Graph(0))
        assert res.cliques == []
        assert res.completed

    def test_isolated_vertices_at_kmin_1(self):
        res = enumerate_maximal_cliques(Graph(3), k_min=1)
        assert sorted(res.cliques) == [(0,), (1,), (2,)]

    def test_isolated_vertices_excluded_at_kmin_2(self):
        res = enumerate_maximal_cliques(Graph(3), k_min=2)
        assert res.cliques == []

    def test_single_edge(self):
        g = Graph.from_edges(2, [(0, 1)])
        assert enumerate_maximal_cliques(g).cliques == [(0, 1)]

    def test_triangle(self, triangle):
        assert enumerate_maximal_cliques(triangle).cliques == [(0, 1, 2)]

    def test_path(self):
        res = enumerate_maximal_cliques(path_graph(5))
        assert sorted(res.cliques) == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_star(self, star7):
        res = enumerate_maximal_cliques(star7)
        assert sorted(res.cliques) == [(0, i) for i in range(1, 7)]

    def test_cycle(self, c6):
        res = enumerate_maximal_cliques(c6)
        assert len(res.cliques) == 6
        assert all(len(c) == 2 for c in res.cliques)

    def test_complete(self):
        res = enumerate_maximal_cliques(complete_graph(8))
        assert res.cliques == [tuple(range(8))]

    def test_barbell(self, barbell4):
        res = enumerate_maximal_cliques(barbell4)
        assert sorted(res.cliques) == [(0, 1, 2, 3), (3, 4), (4, 5, 6, 7)]

    def test_invalid_kmin(self, triangle):
        with pytest.raises(ParameterError):
            enumerate_maximal_cliques(triangle, k_min=0)

    def test_invalid_range(self, triangle):
        with pytest.raises(ParameterError):
            enumerate_maximal_cliques(triangle, k_min=5, k_max=4)


class TestCorrectness:
    def test_matches_networkx(self, seeded_er):
        res = enumerate_maximal_cliques(seeded_er, k_min=1)
        assert sorted(res.cliques) == nx_maximal_cliques(seeded_er)

    def test_no_duplicates(self, random_graph):
        res = enumerate_maximal_cliques(random_graph)
        assert len(res.cliques) == len(set(res.cliques))

    def test_all_maximal(self, random_graph):
        g = random_graph
        for c in enumerate_maximal_cliques(g).cliques:
            assert g.is_clique(c)
            assert not g.common_neighbors(c).any()

    def test_planted_clique_found(self):
        g, members = planted_clique(60, 9, 0.1, seed=2)
        res = enumerate_maximal_cliques(g)
        assert tuple(members) in set(res.cliques)

    def test_overlapping_cliques_found(self):
        g, cliques = overlapping_cliques(50, [8, 8, 8], 4, seed=3)
        got = set(enumerate_maximal_cliques(g).cliques)
        for c in cliques:
            assert tuple(c) in got


class TestNonDecreasingOrder:
    """The paper's headline property: emission in non-decreasing size."""

    def test_order_on_random(self, seeded_er):
        res = enumerate_maximal_cliques(seeded_er, k_min=1)
        sizes = [len(c) for c in res.cliques]
        assert sizes == sorted(sizes)

    def test_order_with_callback(self, random_graph):
        seen = []
        enumerate_maximal_cliques(random_graph, on_clique=seen.append)
        sizes = [len(c) for c in seen]
        assert sizes == sorted(sizes)

    def test_canonical_within_size(self, random_graph):
        res = enumerate_maximal_cliques(random_graph)
        for size, group in res.by_size().items():
            assert group == sorted(group)


class TestSizeRange:
    def test_k_min_filters_small(self, barbell4):
        res = enumerate_maximal_cliques(barbell4, k_min=3)
        assert sorted(res.cliques) == [(0, 1, 2, 3), (4, 5, 6, 7)]

    def test_k_max_stops_early(self):
        g = complete_graph(8)
        res = enumerate_maximal_cliques(g, k_min=2, k_max=5)
        assert res.cliques == []  # the only maximal clique has size 8
        assert not res.completed  # candidates remained

    def test_k_max_reports_maximal_at_bound(self, barbell4):
        res = enumerate_maximal_cliques(barbell4, k_min=2, k_max=4)
        assert (0, 1, 2, 3) in res.cliques
        assert res.completed

    @pytest.mark.parametrize("k_min", [2, 3, 4, 5])
    def test_init_k_seeding_matches_full_run(self, k_min, random_graph):
        """Init_K seeding must agree with filtering a full run."""
        full = enumerate_maximal_cliques(random_graph, k_min=1)
        expected = sorted(c for c in full.cliques if len(c) >= k_min)
        seeded = enumerate_maximal_cliques(random_graph, k_min=k_min)
        assert sorted(seeded.cliques) == expected

    def test_init_k_on_planted(self):
        g, members = planted_clique(50, 10, 0.12, seed=8)
        res = enumerate_maximal_cliques(g, k_min=8)
        assert tuple(members) in set(res.cliques)
        assert all(len(c) >= 8 for c in res.cliques)


class TestLevelStats:
    def test_stats_recorded(self, random_graph):
        res = enumerate_maximal_cliques(random_graph)
        assert res.level_stats
        ks = [ls.k for ls in res.level_stats]
        assert ks == sorted(ks)
        assert ks[0] == 2

    def test_paper_recurrences_hold(self, random_graph):
        res = enumerate_maximal_cliques(random_graph)
        issues = check_paper_recurrences(res.level_stats, random_graph.n)
        assert issues == []

    def test_memory_rises_then_falls(self):
        g, _ = planted_clique(80, 12, 0.08, seed=5)
        res = enumerate_maximal_cliques(g)
        bytes_series = [ls.candidate_bytes for ls in res.level_stats]
        peak = max(bytes_series)
        peak_idx = bytes_series.index(peak)
        # strictly decreasing after some point past the peak
        assert bytes_series[-1] <= peak
        assert peak_idx < len(bytes_series) - 1

    def test_counts_match_emission(self, random_graph):
        res = enumerate_maximal_cliques(random_graph, k_min=1)
        emitted_by_stats = sum(
            ls.maximal_emitted for ls in res.level_stats
        )
        # stats cover levels >= 2; add isolated vertices (none here)
        isolated = sum(
            1 for v in range(random_graph.n) if random_graph.degree(v) == 0
        )
        assert emitted_by_stats + isolated == len(res.cliques)

    def test_peak_bytes_accessor(self, random_graph):
        res = enumerate_maximal_cliques(random_graph)
        assert res.peak_candidate_bytes() == max(
            ls.candidate_bytes for ls in res.level_stats
        )


class TestBudgets:
    def test_max_cliques_budget(self):
        g = erdos_renyi(30, 0.5, seed=1)
        with pytest.raises(BudgetExceeded) as exc:
            enumerate_maximal_cliques(g, max_cliques=3)
        assert exc.value.emitted == 3

    def test_memory_budget(self):
        g, _ = planted_clique(60, 12, 0.2, seed=1)
        with pytest.raises(BudgetExceeded) as exc:
            enumerate_maximal_cliques(g, max_candidate_bytes=100)
        assert exc.value.level >= 2

    def test_generous_budgets_pass(self, random_graph):
        res = enumerate_maximal_cliques(
            random_graph, max_cliques=10**9, max_candidate_bytes=10**12
        )
        assert res.completed


class TestCallback:
    def test_callback_suppresses_collection(self, random_graph):
        seen = []
        res = enumerate_maximal_cliques(
            random_graph, on_clique=seen.append
        )
        assert res.cliques == []
        assert sorted(seen) == sorted(
            enumerate_maximal_cliques(random_graph).cliques
        )


class TestSeedSublists:
    def test_from_k_cliques_requires_k2(self, triangle):
        with pytest.raises(ParameterError):
            build_sublists_from_k_cliques(triangle, 1, [], OpCounters())

    def test_singleton_groups_dropped(self):
        g = complete_graph(4)
        # a single 3-clique forms a singleton sub-list -> dropped
        subs = build_sublists_from_k_cliques(
            g, 3, [(0, 1, 2)], OpCounters()
        )
        assert subs == []

    def test_group_common_neighbors(self):
        g = complete_graph(4)
        subs = build_sublists_from_k_cliques(
            g, 3, [(0, 1, 2), (0, 1, 3)], OpCounters()
        )
        assert len(subs) == 1
        sl = subs[0]
        assert sl.prefix == (0, 1)
        assert sl.tails.tolist() == [2, 3]
        assert sorted(
            __import__("repro.core.bitset", fromlist=["words_to_indices"])
            .words_to_indices(sl.cn_words, 4)
            .tolist()
        ) == [2, 3]


# ---------------------------------------------------------------------------
# the definitive cross-validation property
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=18),
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=0, max_value=2000),
)
def test_matches_networkx_property(n, p, seed):
    g = erdos_renyi(n, p, seed=seed)
    res = enumerate_maximal_cliques(g, k_min=1)
    assert sorted(res.cliques) == nx_maximal_cliques(g)
    sizes = [len(c) for c in res.cliques]
    assert sizes == sorted(sizes)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=4, max_value=16),
    st.floats(min_value=0.2, max_value=0.8),
    st.integers(min_value=0, max_value=500),
    st.integers(min_value=3, max_value=5),
)
def test_init_k_seeding_property(n, p, seed, k_min):
    g = erdos_renyi(n, p, seed=seed)
    full = enumerate_maximal_cliques(g, k_min=1)
    expected = sorted(c for c in full.cliques if len(c) >= k_min)
    seeded = enumerate_maximal_cliques(g, k_min=k_min)
    assert sorted(seeded.cliques) == expected
