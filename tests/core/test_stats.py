"""Tests for graph statistics."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
    star_graph,
)
from repro.core.graph import Graph
from repro.core.stats import (
    average_clustering,
    clustering_coefficient,
    connected_components,
    degree_histogram,
    summarize,
    triangle_count,
)


class TestDegreeHistogram:
    def test_star(self):
        h = degree_histogram(star_graph(6))
        assert h == {1: 5, 5: 1}

    def test_empty(self):
        assert degree_histogram(Graph(0)) == {}


class TestTriangles:
    def test_complete(self):
        assert triangle_count(complete_graph(5)) == 10  # C(5,3)

    def test_triangle_free(self):
        assert triangle_count(cycle_graph(6)) == 0
        assert triangle_count(path_graph(5)) == 0

    def test_matches_networkx(self):
        for seed in range(3):
            g = erdos_renyi(30, 0.3, seed=seed)
            ours = triangle_count(g)
            theirs = sum(nx.triangles(g.to_networkx()).values()) // 3
            assert ours == theirs


class TestClustering:
    def test_clique_vertex(self):
        assert clustering_coefficient(complete_graph(4), 0) == 1.0

    def test_low_degree_zero(self):
        assert clustering_coefficient(path_graph(3), 0) == 0.0

    def test_average_matches_networkx(self):
        g = erdos_renyi(25, 0.35, seed=4)
        ours = average_clustering(g)
        theirs = nx.average_clustering(g.to_networkx())
        assert ours == pytest.approx(theirs, abs=1e-12)

    def test_empty_graph(self):
        assert average_clustering(Graph(0)) == 0.0


class TestComponents:
    def test_connected(self):
        comps = connected_components(cycle_graph(5))
        assert len(comps) == 1
        assert comps[0] == list(range(5))

    def test_isolated_vertices(self):
        g = Graph(4)
        g.add_edge(0, 1)
        comps = connected_components(g)
        assert comps[0] == [0, 1]
        assert len(comps) == 3

    def test_sorted_by_size(self):
        g = Graph.from_edges(7, [(0, 1), (1, 2), (3, 4)])
        comps = connected_components(g)
        assert [len(c) for c in comps] == [3, 2, 1, 1]


class TestSummary:
    def test_complete_graph(self):
        s = summarize(complete_graph(5))
        assert s.n == 5
        assert s.m == 10
        assert s.density == pytest.approx(1.0)
        assert s.triangles == 10
        assert s.average_clustering == pytest.approx(1.0)
        assert s.n_components == 1
        assert s.largest_component == 5

    def test_empty(self):
        s = summarize(Graph(0))
        assert s.n == 0
        assert s.largest_component == 0
