"""The SoA batch kernels against the per-stream WahBitmap oracle.

:mod:`repro.core.wah_kernels` re-implements the WAH hot loop as numpy
word-array operations over many streams at once; the compressed-domain
generation step swaps them in for the scalar kernels expecting
*byte-identical* words.  This suite pins that contract: every batch
kernel is replayed stream by stream through :class:`~repro.core.
compressed.WahBitmap` (the canonical encoder) and the results compared
exactly — words, offsets, counts, and decoded indices — across the
boundary shapes the step actually produces: fill/literal alternation,
all-ones fills, universes that are not a multiple of the 31-bit group,
empty streams inside a batch, and empty batches.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.errors import BitSetError
from repro.core.compressed import (
    GROUP_BITS,
    WahBitmap,
    wah_and_any,
    wah_and_count,
    wah_and_into,
)
from repro.core.wah_kernels import (
    batch_and,
    batch_and_any,
    batch_and_count,
    batch_decode_indices,
    batch_decode_words,
    batch_encode_indices,
    batch_encode_words,
    batch_indices_above,
    concat_streams,
    take_streams,
)

#: empty, sub-group, exact group/word multiples, n % 31 != 0 tails.
UNIVERSES = [0, 1, 30, 31, 32, 62, 63, 64, 93, 100, 128, 500, 2000]

#: densities spanning all-zero fills, sparse, dense, and all-ones fills.
DENSITIES = [0.0, 0.01, 0.2, 0.5, 0.95, 1.0]


def _n_groups(n: int) -> int:
    return (n + GROUP_BITS - 1) // GROUP_BITS


def _random_indices(rng, n, density):
    return [i for i in range(n) if rng.random() < density]


def _random_batch(rng, n, n_streams):
    """A batch of WahBitmaps plus its SoA form."""
    maps = [
        WahBitmap.from_indices(
            n, _random_indices(rng, n, rng.choice(DENSITIES))
        )
        for _ in range(n_streams)
    ]
    words, offsets = concat_streams([m.wah_words() for m in maps])
    return maps, words, offsets


class TestStreamPlumbing:
    """concat/take round-trips on mixed-shape batches."""

    @pytest.mark.parametrize("seed", range(3))
    def test_concat_take_roundtrip(self, seed):
        rng = random.Random(seed)
        for _ in range(30):
            n = rng.choice(UNIVERSES)
            maps, words, offsets = _random_batch(
                rng, n, rng.randrange(0, 12)
            )
            if not maps:
                assert offsets.tolist() == [0]
                continue
            # take with repeats and reordering
            ids = [
                rng.randrange(len(maps))
                for _ in range(rng.randrange(0, 2 * len(maps)))
            ]
            tw, to = take_streams(
                words, offsets, np.asarray(ids, dtype=np.int64)
            )
            for out_i, src_i in enumerate(ids):
                got = tw[to[out_i]:to[out_i + 1]]
                np.testing.assert_array_equal(
                    got, maps[src_i].wah_words()
                )

    def test_empty_batch(self):
        words, offsets = concat_streams([])
        assert words.size == 0 and offsets.tolist() == [0]
        tw, to = take_streams(
            words, offsets, np.zeros(0, dtype=np.int64)
        )
        assert tw.size == 0 and to.tolist() == [0]


class TestAndKernels:
    """batch AND / any / count against per-stream oracle replay."""

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_per_stream_oracle(self, seed):
        rng = random.Random(100 + seed)
        for _ in range(25):
            n = rng.choice(UNIVERSES)
            n_streams = rng.randrange(1, 10)
            a_maps, aw, ao = _random_batch(rng, n, n_streams)
            b_maps, bw, bo = _random_batch(rng, n, n_streams)
            ng = _n_groups(n)

            got_w, got_o = batch_and(aw, ao, bw, bo, ng)
            got_any = batch_and_any(aw, ao, bw, bo, ng)
            got_cnt = batch_and_count(aw, ao, bw, bo, ng)

            for i, (a, b) in enumerate(zip(a_maps, b_maps)):
                a_w = a.wah_words().tolist()
                b_w = b.wah_words().tolist()
                np.testing.assert_array_equal(
                    got_w[got_o[i]:got_o[i + 1]],
                    np.array(
                        wah_and_into(a_w, b_w, ng), dtype=np.uint32
                    ),
                    err_msg=f"stream {i} of n={n}",
                )
                assert got_any[i] == wah_and_any(a_w, b_w, ng)
                assert got_cnt[i] == wah_and_count(a_w, b_w, ng)

    def test_all_ones_fills(self):
        # multi-word one-fills AND one-fills stay canonical fills
        for n in (93, 124, 500):
            full = WahBitmap.from_indices(n, list(range(n)))
            w, o = concat_streams([full.wah_words()] * 3)
            rw, ro = batch_and(w, o, w, o, _n_groups(n))
            for i in range(3):
                np.testing.assert_array_equal(
                    rw[ro[i]:ro[i + 1]], full.wah_words()
                )

    def test_empty_pairs(self):
        w, o = concat_streams([])
        rw, ro = batch_and(w, o, w, o, 4)
        assert rw.size == 0 and ro.tolist() == [0]
        assert batch_and_any(w, o, w, o, 4).size == 0
        assert batch_and_count(w, o, w, o, 4).size == 0


class TestCodec:
    """encode/decode kernels against WahBitmap construction."""

    @pytest.mark.parametrize("seed", range(3))
    def test_encode_indices_matches_encoder(self, seed):
        rng = random.Random(200 + seed)
        for _ in range(30):
            n = rng.choice([u for u in UNIVERSES if u])
            sets = [
                _random_indices(rng, n, rng.choice(DENSITIES))
                for _ in range(rng.randrange(1, 8))
            ]
            counts = np.array([len(s) for s in sets], dtype=np.int64)
            offs = np.zeros(counts.size + 1, dtype=np.int64)
            np.cumsum(counts, out=offs[1:])
            flat = np.array(
                [i for s in sets for i in s], dtype=np.int64
            )
            words, offsets = batch_encode_indices(flat, offs, n)
            for i, s in enumerate(sets):
                np.testing.assert_array_equal(
                    words[offsets[i]:offsets[i + 1]],
                    WahBitmap.from_indices(n, s).wah_words(),
                )
            # and back again
            dflat, doffs = batch_decode_indices(
                words, offsets, _n_groups(n), n
            )
            np.testing.assert_array_equal(dflat, flat)
            np.testing.assert_array_equal(doffs, offs)

    @pytest.mark.parametrize("n", [64, 128, 512, 1984])
    def test_encode_words_roundtrip(self, n):
        # word-encode requires 64-bit-word universes (CN strings)
        rng = random.Random(n)
        sets = [
            _random_indices(rng, n, d) for d in DENSITIES for _ in (0, 1)
        ]
        mat = np.zeros((len(sets), n // 64), dtype=np.uint64)
        for r, s in enumerate(sets):
            for i in s:
                mat[r, i // 64] |= np.uint64(1 << (i % 64))
        words, offsets = batch_encode_words(mat, n)
        for i, s in enumerate(sets):
            np.testing.assert_array_equal(
                words[offsets[i]:offsets[i + 1]],
                WahBitmap.from_indices(n, s).wah_words(),
            )
        np.testing.assert_array_equal(
            batch_decode_words(words, offsets, _n_groups(n), n), mat
        )

    def test_encode_indices_rejects_out_of_universe(self):
        with pytest.raises(BitSetError):
            batch_encode_indices(
                np.array([7], dtype=np.int64),
                np.array([0, 1], dtype=np.int64),
                7,
            )

    def test_decode_words_rejects_ragged_universe(self):
        with pytest.raises(BitSetError):
            batch_decode_words(
                np.zeros(0, dtype=np.uint32),
                np.zeros(1, dtype=np.int64),
                1,
                31,
            )


class TestIndicesAbove:
    """batch partner scan against the scalar oracle."""

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_scalar(self, seed):
        rng = random.Random(300 + seed)
        for _ in range(25):
            n = rng.choice([u for u in UNIVERSES if u])
            maps, words, offsets = _random_batch(
                rng, n, rng.randrange(1, 8)
            )
            lo = np.array(
                [rng.randrange(-1, n) for _ in maps], dtype=np.int64
            )
            flat, offs = batch_indices_above(
                words, offsets, _n_groups(n), n, lo
            )
            for i, m in enumerate(maps):
                expect = [
                    j for j in m.iter_indices() if j > int(lo[i])
                ]
                assert flat[offs[i]:offs[i + 1]].tolist() == expect
