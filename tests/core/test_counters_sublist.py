"""Tests for OpCounters and CliqueSubList."""

from __future__ import annotations

import numpy as np

from repro.core.counters import OpCounters
from repro.core.sublist import CliqueSubList


class TestCounters:
    def test_defaults_zero(self):
        c = OpCounters()
        assert c.total_work() == 0
        assert c.snapshot()["pair_checks"] == 0

    def test_merge(self):
        a = OpCounters(bit_and_ops=2, pair_checks=3, levels=4)
        b = OpCounters(bit_and_ops=1, pair_checks=5, levels=2)
        b.extra["subset_probes"] = 7
        a.merge(b)
        assert a.bit_and_ops == 3
        assert a.pair_checks == 8
        assert a.levels == 4  # max, not sum
        assert a.extra["subset_probes"] == 7

    def test_total_work_weights(self):
        c = OpCounters(
            bit_and_ops=1, bit_exist_checks=1, pair_checks=1,
            cliques_generated=1,
        )
        assert c.total_work() == 1 + 4 + 2 + 1

    def test_reset(self):
        c = OpCounters(bit_and_ops=5)
        c.extra["x"] = 1
        c.reset()
        assert c.bit_and_ops == 0
        assert c.extra == {}

    def test_snapshot_includes_extra(self):
        c = OpCounters()
        c.extra["subset_probes"] = 9
        assert c.snapshot()["subset_probes"] == 9


class TestSubList:
    def _make(self, prefix=(0, 1), tails=(2, 5, 9), n=16):
        from repro.core import bitset as bs

        return CliqueSubList(
            prefix=prefix,
            tails=np.asarray(tails, dtype=np.int64),
            cn_words=bs.indices_to_words(tails, n),
        )

    def test_k(self):
        assert self._make().k == 3

    def test_len(self):
        assert len(self._make()) == 3

    def test_cliques_materialised(self):
        sl = self._make()
        assert sl.cliques() == [(0, 1, 2), (0, 1, 5), (0, 1, 9)]

    def test_nbytes_accounting(self):
        sl = self._make()
        expected = 3 * 8 + 2 * 8 + sl.cn_words.nbytes + 8
        assert sl.nbytes() == expected

    def test_work_estimate_scales_quadratically(self):
        small = self._make(tails=(2, 3))
        big = self._make(tails=tuple(range(2, 12)))
        assert big.work_estimate() > small.work_estimate()
        assert big.work_estimate() >= 10 * 9 // 2

    def test_repr_truncates(self):
        sl = self._make(tails=tuple(range(2, 14)))
        assert "..." in repr(sl)
