"""Tests for the FPT vertex cover solver."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
    star_graph,
)
from repro.core.graph import Graph
from repro.core.vertex_cover import (
    greedy_vertex_cover,
    is_vertex_cover,
    matching_lower_bound,
    minimum_vertex_cover,
    vertex_cover_decision,
)
from repro.errors import ParameterError


def brute_min_vc(g: Graph) -> int:
    """Exact minimum cover size by exhaustive search (tiny graphs)."""
    from itertools import combinations

    for k in range(g.n + 1):
        for subset in combinations(range(g.n), k):
            if is_vertex_cover(g, subset):
                return k
    return g.n


class TestHelpers:
    def test_is_vertex_cover(self, triangle):
        assert is_vertex_cover(triangle, [0, 1])
        assert not is_vertex_cover(triangle, [0])
        assert is_vertex_cover(Graph(3), [])

    def test_greedy_is_cover(self, random_graph):
        assert is_vertex_cover(random_graph, greedy_vertex_cover(random_graph))

    def test_matching_bound_le_cover(self, random_graph):
        assert matching_lower_bound(random_graph) <= len(
            minimum_vertex_cover(random_graph)
        )

    def test_greedy_is_2_approx(self, random_graph):
        opt = len(minimum_vertex_cover(random_graph))
        assert len(greedy_vertex_cover(random_graph)) <= 2 * opt


class TestDecision:
    def test_negative_budget(self, triangle):
        with pytest.raises(ParameterError):
            vertex_cover_decision(triangle, -1)

    def test_zero_budget_on_edgeless(self):
        assert vertex_cover_decision(Graph(4), 0) == []

    def test_zero_budget_with_edges(self, triangle):
        assert vertex_cover_decision(triangle, 0) is None

    def test_triangle_needs_two(self, triangle):
        assert vertex_cover_decision(triangle, 1) is None
        sol = vertex_cover_decision(triangle, 2)
        assert sol is not None and len(sol) == 2

    def test_star_covered_by_center(self):
        sol = vertex_cover_decision(star_graph(9), 1)
        assert sol == [0]

    def test_solution_within_budget(self, random_graph):
        k = len(greedy_vertex_cover(random_graph))
        sol = vertex_cover_decision(random_graph, k)
        assert sol is not None
        assert len(sol) <= k
        assert is_vertex_cover(random_graph, sol)


class TestMinimum:
    def test_path(self):
        assert len(minimum_vertex_cover(path_graph(5))) == 2

    def test_cycle_even(self):
        assert len(minimum_vertex_cover(cycle_graph(6))) == 3

    def test_cycle_odd(self):
        assert len(minimum_vertex_cover(cycle_graph(7))) == 4

    def test_complete(self):
        assert len(minimum_vertex_cover(complete_graph(6))) == 5

    def test_empty(self):
        assert minimum_vertex_cover(Graph(5)) == []

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_brute_force(self, seed):
        g = erdos_renyi(10, 0.35, seed=seed)
        assert len(minimum_vertex_cover(g)) == brute_min_vc(g)

    def test_matches_networkx_lp_bound(self):
        # min VC >= maximum matching size (Kőnig: equality on bipartite)
        g = erdos_renyi(20, 0.2, seed=5)
        nxg = g.to_networkx()
        matching = nx.max_weight_matching(nxg, maxcardinality=True)
        assert len(minimum_vertex_cover(g)) >= len(matching)

    def test_clique_vc_duality(self):
        """n - minVC(complement) == maximum clique size."""
        from repro.core.maximum_clique import maximum_clique_size

        for seed in range(3):
            g = erdos_renyi(12, 0.5, seed=seed)
            vc = minimum_vertex_cover(g.complement())
            assert g.n - len(vc) == maximum_clique_size(g)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=12),
    st.floats(min_value=0.0, max_value=0.8),
    st.integers(min_value=0, max_value=500),
)
def test_minimum_cover_property(n, p, seed):
    g = erdos_renyi(n, p, seed=seed)
    sol = minimum_vertex_cover(g)
    assert is_vertex_cover(g, sol)
    assert len(sol) >= matching_lower_bound(g)
    # removing any vertex from a minimum cover must break it
    for v in sol:
        rest = [u for u in sol if u != v]
        assert not is_vertex_cover(g, rest)
