"""Tests for degeneracy ordering and core numbers."""

from __future__ import annotations

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.degeneracy import core_numbers, degeneracy, degeneracy_ordering
from repro.core.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
    star_graph,
)
from repro.core.graph import Graph


class TestDegeneracy:
    def test_empty(self):
        order, d = degeneracy_ordering(Graph(0))
        assert order == []
        assert d == 0

    def test_edgeless(self):
        order, d = degeneracy_ordering(Graph(5))
        assert sorted(order) == list(range(5))
        assert d == 0

    def test_path(self):
        assert degeneracy(path_graph(10)) == 1

    def test_cycle(self):
        assert degeneracy(cycle_graph(8)) == 2

    def test_complete(self):
        assert degeneracy(complete_graph(6)) == 5

    def test_star(self):
        assert degeneracy(star_graph(9)) == 1

    def test_ordering_property(self):
        """Each vertex has at most d neighbors later in the order."""
        g = erdos_renyi(40, 0.3, seed=9)
        order, d = degeneracy_ordering(g)
        pos = {v: i for i, v in enumerate(order)}
        for v in range(g.n):
            later = sum(
                1 for u in g.neighbors(v).tolist() if pos[u] > pos[v]
            )
            assert later <= d

    def test_ordering_is_permutation(self):
        g = erdos_renyi(30, 0.2, seed=3)
        order, _ = degeneracy_ordering(g)
        assert sorted(order) == list(range(30))


class TestCoreNumbers:
    def test_matches_networkx(self):
        for seed in range(4):
            g = erdos_renyi(25, 0.3, seed=seed)
            ours = core_numbers(g)
            theirs = nx.core_number(g.to_networkx())
            for v in range(g.n):
                assert ours[v] == theirs[v], f"vertex {v} seed {seed}"

    def test_complete_graph_cores(self):
        cores = core_numbers(complete_graph(5))
        assert all(c == 4 for c in cores)

    def test_max_core_is_degeneracy(self):
        g = erdos_renyi(35, 0.25, seed=6)
        assert int(core_numbers(g).max()) == degeneracy(g)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=25),
    st.integers(min_value=0, max_value=1000),
)
def test_degeneracy_bounds_random(n, seed):
    g = erdos_renyi(n, 0.4, seed=seed)
    d = degeneracy(g)
    max_deg = max((g.degree(v) for v in range(n)), default=0)
    assert 0 <= d <= max_deg
    # degeneracy of any graph with m edges is >= m/n
    if n:
        assert d >= g.m / n - 1
