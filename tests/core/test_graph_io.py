"""Tests for graph readers/writers, including malformed-input handling."""

from __future__ import annotations

import pytest

from repro.core import graph_io
from repro.core.generators import erdos_renyi
from repro.core.graph import Graph
from repro.errors import ParseError


@pytest.fixture
def sample() -> Graph:
    return erdos_renyi(20, 0.3, seed=5)


class TestDimacs:
    def test_roundtrip(self, sample, tmp_path):
        p = tmp_path / "g.dimacs"
        graph_io.write_dimacs(sample, p, comment="test graph")
        assert graph_io.read_dimacs(p) == sample

    def test_comment_lines_written(self, sample, tmp_path):
        p = tmp_path / "g.clq"
        graph_io.write_dimacs(sample, p, comment="line1\nline2")
        text = p.read_text()
        assert text.startswith("c line1\nc line2\n")

    def test_one_based_ids(self, tmp_path):
        p = tmp_path / "g.dimacs"
        p.write_text("p edge 3 1\ne 1 3\n")
        g = graph_io.read_dimacs(p)
        assert g.has_edge(0, 2)

    def test_missing_problem_line(self, tmp_path):
        p = tmp_path / "g.dimacs"
        p.write_text("e 1 2\n")
        with pytest.raises(ParseError, match="before problem line"):
            graph_io.read_dimacs(p)

    def test_duplicate_problem_line(self, tmp_path):
        p = tmp_path / "g.dimacs"
        p.write_text("p edge 3 0\np edge 3 0\n")
        with pytest.raises(ParseError, match="duplicate"):
            graph_io.read_dimacs(p)

    def test_out_of_range_endpoint(self, tmp_path):
        p = tmp_path / "g.dimacs"
        p.write_text("p edge 3 1\ne 1 4\n")
        with pytest.raises(ParseError, match="out of range"):
            graph_io.read_dimacs(p)

    def test_non_integer_endpoint(self, tmp_path):
        p = tmp_path / "g.dimacs"
        p.write_text("p edge 3 1\ne 1 x\n")
        with pytest.raises(ParseError, match="non-integer"):
            graph_io.read_dimacs(p)

    def test_unknown_record(self, tmp_path):
        p = tmp_path / "g.dimacs"
        p.write_text("p edge 3 0\nq 1 2\n")
        with pytest.raises(ParseError, match="unknown record"):
            graph_io.read_dimacs(p)

    def test_self_loops_skipped(self, tmp_path):
        p = tmp_path / "g.dimacs"
        p.write_text("p edge 3 2\ne 1 1\ne 1 2\n")
        g = graph_io.read_dimacs(p)
        assert g.m == 1

    def test_empty_file_rejected(self, tmp_path):
        p = tmp_path / "g.dimacs"
        p.write_text("")
        with pytest.raises(ParseError, match="missing problem line"):
            graph_io.read_dimacs(p)


class TestEdgeList:
    def test_roundtrip(self, sample, tmp_path):
        p = tmp_path / "g.edges"
        graph_io.write_edge_list(sample, p)
        assert graph_io.read_edge_list(p) == sample

    def test_header_preserves_isolated_vertices(self, tmp_path):
        p = tmp_path / "g.edges"
        g = Graph(5)
        g.add_edge(0, 1)
        graph_io.write_edge_list(g, p)
        assert graph_io.read_edge_list(p).n == 5

    def test_inferred_vertex_count(self, tmp_path):
        p = tmp_path / "g.edges"
        p.write_text("0 7\n")
        assert graph_io.read_edge_list(p).n == 8

    def test_comments_ignored(self, tmp_path):
        p = tmp_path / "g.edges"
        p.write_text("# header\n0 1 # trailing\n")
        assert graph_io.read_edge_list(p).m == 1

    def test_negative_id_rejected(self, tmp_path):
        p = tmp_path / "g.edges"
        p.write_text("-1 2\n")
        with pytest.raises(ParseError, match="negative"):
            graph_io.read_edge_list(p)

    def test_malformed_line(self, tmp_path):
        p = tmp_path / "g.edges"
        p.write_text("0 1 2\n")
        with pytest.raises(ParseError, match="expected"):
            graph_io.read_edge_list(p)

    def test_id_exceeds_header(self, tmp_path):
        p = tmp_path / "g.edges"
        p.write_text("n 3\n0 5\n")
        with pytest.raises(ParseError, match="exceeds"):
            graph_io.read_edge_list(p)


class TestJson:
    def test_roundtrip(self, sample, tmp_path):
        p = tmp_path / "g.json"
        graph_io.write_json(sample, p)
        assert graph_io.read_json(p) == sample

    def test_invalid_json(self, tmp_path):
        p = tmp_path / "g.json"
        p.write_text("{not json")
        with pytest.raises(ParseError, match="invalid JSON"):
            graph_io.read_json(p)

    def test_missing_n(self, tmp_path):
        p = tmp_path / "g.json"
        p.write_text('{"edges": []}')
        with pytest.raises(ParseError, match="'n'"):
            graph_io.read_json(p)

    def test_negative_n(self, tmp_path):
        p = tmp_path / "g.json"
        p.write_text('{"n": -2, "edges": []}')
        with pytest.raises(ParseError, match="non-negative"):
            graph_io.read_json(p)

    def test_malformed_edge(self, tmp_path):
        p = tmp_path / "g.json"
        p.write_text('{"n": 3, "edges": [[0]]}')
        with pytest.raises(ParseError, match="malformed edge"):
            graph_io.read_json(p)


class TestDispatch:
    @pytest.mark.parametrize("ext", [".dimacs", ".clq", ".edges", ".json"])
    def test_load_save_by_extension(self, sample, tmp_path, ext):
        p = tmp_path / f"g{ext}"
        graph_io.save(sample, p)
        assert graph_io.load(p) == sample

    def test_unknown_extension(self, sample, tmp_path):
        with pytest.raises(ParseError, match="unknown graph format"):
            graph_io.save(sample, tmp_path / "g.xyz")
        with pytest.raises(ParseError, match="unknown graph format"):
            graph_io.load(tmp_path / "g.xyz")


class TestGraphFingerprint:
    def test_deterministic(self, sample):
        assert graph_io.graph_fingerprint(sample) == (
            graph_io.graph_fingerprint(sample)
        )

    def test_content_keyed_not_identity_keyed(self, sample):
        assert graph_io.graph_fingerprint(sample.copy()) == (
            graph_io.graph_fingerprint(sample)
        )

    def test_construction_order_irrelevant(self):
        a = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        b = Graph.from_edges(4, [(2, 3), (0, 1), (1, 2)])
        assert graph_io.graph_fingerprint(a) == graph_io.graph_fingerprint(b)

    def test_edge_mutation_changes_fingerprint(self, sample):
        before = graph_io.graph_fingerprint(sample)
        mutated = sample.copy()
        u, v = next(
            (u, v)
            for u in range(sample.n)
            for v in range(u + 1, sample.n)
            if not sample.has_edge(u, v)
        )
        mutated.add_edge(u, v)
        assert graph_io.graph_fingerprint(mutated) != before
        mutated.remove_edge(u, v)
        assert graph_io.graph_fingerprint(mutated) == before

    def test_vertex_count_matters(self):
        assert graph_io.graph_fingerprint(Graph(3)) != (
            graph_io.graph_fingerprint(Graph(4))
        )

    def test_survives_io_round_trip(self, sample, tmp_path):
        p = tmp_path / "g.json"
        graph_io.save(sample, p)
        assert graph_io.graph_fingerprint(graph_io.load(p)) == (
            graph_io.graph_fingerprint(sample)
        )

    def test_is_hex_sha256(self, sample):
        fp = graph_io.graph_fingerprint(sample)
        assert len(fp) == 64
        int(fp, 16)  # raises if not hex
