"""Tests for the Bron–Kerbosch baselines."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bron_kerbosch import (
    bron_kerbosch_base,
    bron_kerbosch_degeneracy,
    bron_kerbosch_pivot,
)
from repro.core.counters import OpCounters
from repro.core.generators import (
    complete_graph,
    erdos_renyi,
    overlapping_cliques,
    path_graph,
)
from repro.core.graph import Graph
from tests.conftest import nx_maximal_cliques

ALL_VARIANTS = [
    bron_kerbosch_base,
    bron_kerbosch_pivot,
    bron_kerbosch_degeneracy,
]


@pytest.mark.parametrize("algo", ALL_VARIANTS)
class TestAllVariants:
    def test_empty_graph(self, algo):
        assert list(algo(Graph(0))) == []

    def test_single_vertex(self, algo):
        assert list(algo(Graph(1))) == [(0,)]

    def test_edgeless(self, algo):
        assert sorted(algo(Graph(3))) == [(0,), (1,), (2,)]

    def test_single_edge(self, algo):
        g = Graph.from_edges(2, [(0, 1)])
        assert sorted(algo(g)) == [(0, 1)]

    def test_triangle(self, algo, triangle):
        assert sorted(algo(triangle)) == [(0, 1, 2)]

    def test_path(self, algo):
        assert sorted(algo(path_graph(4))) == [(0, 1), (1, 2), (2, 3)]

    def test_complete(self, algo):
        assert list(algo(complete_graph(7))) == [tuple(range(7))]

    def test_barbell(self, algo, barbell4):
        got = sorted(algo(barbell4))
        assert (0, 1, 2, 3) in got
        assert (4, 5, 6, 7) in got
        assert (3, 4) in got
        assert len(got) == 3

    def test_matches_networkx(self, algo, seeded_er):
        assert sorted(algo(seeded_er)) == nx_maximal_cliques(seeded_er)

    def test_no_duplicates(self, algo, random_graph):
        out = list(algo(random_graph))
        assert len(out) == len(set(out))

    def test_all_outputs_maximal(self, algo, random_graph):
        g = random_graph
        for c in algo(g):
            assert g.is_clique(c)
            cn = g.common_neighbors(c)
            assert not cn.any(), f"{c} extendable by {sorted(cn)}"

    def test_counters_populated(self, algo, triangle):
        c = OpCounters()
        list(algo(triangle, counters=c))
        assert c.maximal_emitted == 1


class TestVariantSpecific:
    def test_pivot_explores_fewer_nodes_on_overlaps(self):
        """Improved BK's advantage on heavily overlapping cliques."""
        g, _ = overlapping_cliques(60, [10, 10, 10, 10], 5, seed=1)
        c_base, c_piv = OpCounters(), OpCounters()
        base = sorted(bron_kerbosch_base(g, counters=c_base))
        piv = sorted(bron_kerbosch_pivot(g, counters=c_piv))
        assert base == piv
        assert c_piv.bit_and_ops < c_base.bit_and_ops * 2  # sanity
        # the pivot variant emits from strictly fewer recursion branches:
        # measured via maximality checks (2 per call)
        assert c_piv.bit_exist_checks <= c_base.bit_exist_checks

    def test_base_emits_in_index_extension_order(self):
        # Base BK extends in CANDIDATES presentation order; the first
        # emitted clique is the lexicographically-first maximal clique.
        g = Graph.from_edges(5, [(0, 1), (0, 2), (1, 2), (3, 4)])
        first = next(iter(bron_kerbosch_base(g)))
        assert first == (0, 1, 2)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=1, max_value=16),
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=0, max_value=999),
)
def test_variants_agree_property(n, p, seed):
    g = erdos_renyi(n, p, seed=seed)
    ref = nx_maximal_cliques(g)
    assert sorted(bron_kerbosch_base(g)) == ref
    assert sorted(bron_kerbosch_pivot(g)) == ref
    assert sorted(bron_kerbosch_degeneracy(g)) == ref
