"""Tests for the graph generators."""

from __future__ import annotations

import pytest

from repro.core import generators as gen
from repro.errors import ParameterError


class TestErdosRenyi:
    def test_deterministic(self):
        assert gen.erdos_renyi(20, 0.3, seed=7) == gen.erdos_renyi(
            20, 0.3, seed=7
        )

    def test_different_seeds_differ(self):
        a = gen.erdos_renyi(30, 0.5, seed=1)
        b = gen.erdos_renyi(30, 0.5, seed=2)
        assert a != b

    def test_p_zero_empty(self):
        assert gen.erdos_renyi(10, 0.0, seed=0).m == 0

    def test_p_one_complete(self):
        g = gen.erdos_renyi(10, 1.0, seed=0)
        assert g.m == 45

    def test_p_out_of_range(self):
        with pytest.raises(ParameterError):
            gen.erdos_renyi(10, 1.5)

    def test_validates(self):
        gen.erdos_renyi(25, 0.4, seed=3).validate()


class TestGnm:
    def test_exact_edge_count(self):
        g = gen.gnm_random(20, 37, seed=0)
        assert g.m == 37

    def test_zero_edges(self):
        assert gen.gnm_random(5, 0, seed=0).m == 0

    def test_max_edges(self):
        assert gen.gnm_random(6, 15, seed=0).m == 15

    def test_too_many_rejected(self):
        with pytest.raises(ParameterError):
            gen.gnm_random(4, 7)


class TestPlanted:
    def test_planted_clique_is_clique(self):
        g, members = gen.planted_clique(50, 8, 0.1, seed=4)
        assert len(members) == 8
        assert g.is_clique(members)

    def test_planted_too_big(self):
        with pytest.raises(ParameterError):
            gen.planted_clique(5, 6, 0.1)

    def test_planted_partition_blocks_are_cliques_at_pin_1(self):
        g, blocks = gen.planted_partition(
            40, [6, 5], p_in=1.0, p_out=0.0, seed=2
        )
        for b in blocks:
            assert g.is_clique(b)

    def test_planted_partition_sizes(self):
        g, blocks = gen.planted_partition(30, [5, 5, 5], 0.9, 0.01, seed=1)
        assert [len(b) for b in blocks] == [5, 5, 5]
        assert len({v for b in blocks for v in b}) == 15

    def test_planted_partition_overflow(self):
        with pytest.raises(ParameterError):
            gen.planted_partition(8, [5, 5], 1.0, 0.0)

    def test_planted_partition_bad_p(self):
        with pytest.raises(ParameterError):
            gen.planted_partition(10, [3], 1.5, 0.0)


class TestOverlapping:
    def test_cliques_planted(self):
        g, cliques = gen.overlapping_cliques(40, [6, 6, 6], 3, seed=0)
        for c in cliques:
            assert g.is_clique(c)

    def test_consecutive_share_overlap(self):
        g, cliques = gen.overlapping_cliques(40, [6, 5, 7], 3, seed=0)
        for a, b in zip(cliques, cliques[1:]):
            assert len(set(a) & set(b)) >= 3

    def test_overlap_must_be_smaller(self):
        with pytest.raises(ParameterError):
            gen.overlapping_cliques(40, [4, 4], 4)

    def test_needs_enough_vertices(self):
        with pytest.raises(ParameterError):
            gen.overlapping_cliques(5, [4, 4], 1)

    def test_negative_overlap(self):
        with pytest.raises(ParameterError):
            gen.overlapping_cliques(40, [4], -1)


class TestFixedFamilies:
    def test_path(self):
        g = gen.path_graph(5)
        assert g.m == 4
        assert g.degree(0) == 1
        assert g.degree(2) == 2

    def test_cycle(self):
        g = gen.cycle_graph(5)
        assert g.m == 5
        assert all(g.degree(v) == 2 for v in range(5))

    def test_cycle_too_small(self):
        with pytest.raises(ParameterError):
            gen.cycle_graph(2)

    def test_complete(self):
        g = gen.complete_graph(6)
        assert g.m == 15
        assert g.is_clique(range(6))

    def test_star(self):
        g = gen.star_graph(6)
        assert g.degree(0) == 5
        assert g.m == 5

    def test_barbell(self):
        g = gen.barbell_graph(3)
        assert g.n == 6
        assert g.is_clique([0, 1, 2])
        assert g.is_clique([3, 4, 5])
        assert g.has_edge(2, 3)

    def test_barbell_invalid(self):
        with pytest.raises(ParameterError):
            gen.barbell_graph(0)
