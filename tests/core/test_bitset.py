"""Unit and property tests for repro.core.bitset."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bitset as bs
from repro.core.bitset import BitSet
from repro.errors import BitSetError

# ---------------------------------------------------------------------------
# construction
# ---------------------------------------------------------------------------


class TestConstruction:
    def test_zeros_is_empty(self):
        s = BitSet.zeros(100)
        assert not s.any()
        assert s.count() == 0

    def test_ones_is_full(self):
        s = BitSet.ones(100)
        assert s.count() == 100

    def test_ones_respects_tail(self):
        # 70 is not a multiple of 64: bits 70..127 must stay clear
        s = BitSet.ones(70)
        assert s.count() == 70
        assert 69 in s
        assert 70 not in s

    def test_from_indices(self):
        s = BitSet.from_indices(10, [0, 5, 9])
        assert sorted(s) == [0, 5, 9]

    def test_from_indices_empty(self):
        s = BitSet.from_indices(10, [])
        assert s.count() == 0

    def test_from_indices_out_of_range(self):
        with pytest.raises(BitSetError):
            BitSet.from_indices(10, [10])
        with pytest.raises(BitSetError):
            BitSet.from_indices(10, [-1])

    def test_negative_universe_rejected(self):
        with pytest.raises(BitSetError):
            BitSet(-1)

    def test_zero_universe(self):
        s = BitSet.zeros(0)
        assert s.count() == 0
        assert not s.any()
        assert list(s) == []

    def test_bad_words_shape_rejected(self):
        with pytest.raises(BitSetError):
            BitSet(100, np.zeros(1, dtype=np.uint64))

    def test_bad_words_dtype_rejected(self):
        with pytest.raises(BitSetError):
            BitSet(64, np.zeros(1, dtype=np.int64))

    def test_copy_is_independent(self):
        s = BitSet.from_indices(10, [1])
        t = s.copy()
        t.add(2)
        assert 2 not in s


# ---------------------------------------------------------------------------
# element access
# ---------------------------------------------------------------------------


class TestElements:
    def test_add_and_contains(self):
        s = BitSet.zeros(130)
        s.add(128)
        assert 128 in s
        assert 127 not in s

    def test_discard(self):
        s = BitSet.from_indices(10, [3])
        s.discard(3)
        assert 3 not in s

    def test_discard_absent_is_noop(self):
        s = BitSet.zeros(10)
        s.discard(3)
        assert s.count() == 0

    def test_add_out_of_range(self):
        s = BitSet.zeros(10)
        with pytest.raises(BitSetError):
            s.add(10)

    def test_contains_out_of_range_is_false(self):
        s = BitSet.ones(10)
        assert 10 not in s
        assert -1 not in s

    def test_min_max(self):
        s = BitSet.from_indices(200, [5, 77, 199])
        assert s.min() == 5
        assert s.max() == 199

    def test_min_of_empty_raises(self):
        with pytest.raises(BitSetError):
            BitSet.zeros(10).min()

    def test_max_of_empty_raises(self):
        with pytest.raises(BitSetError):
            BitSet.zeros(10).max()

    def test_iteration_ascending(self):
        s = BitSet.from_indices(300, [250, 3, 64, 65])
        assert list(s) == [3, 64, 65, 250]


# ---------------------------------------------------------------------------
# algebra
# ---------------------------------------------------------------------------


class TestAlgebra:
    def test_and(self):
        a = BitSet.from_indices(10, [1, 2, 3])
        b = BitSet.from_indices(10, [2, 3, 4])
        assert sorted(a & b) == [2, 3]

    def test_or(self):
        a = BitSet.from_indices(10, [1])
        b = BitSet.from_indices(10, [2])
        assert sorted(a | b) == [1, 2]

    def test_xor(self):
        a = BitSet.from_indices(10, [1, 2])
        b = BitSet.from_indices(10, [2, 3])
        assert sorted(a ^ b) == [1, 3]

    def test_sub(self):
        a = BitSet.from_indices(10, [1, 2])
        b = BitSet.from_indices(10, [2])
        assert sorted(a - b) == [1]

    def test_inplace_ops_return_self(self):
        a = BitSet.from_indices(10, [1, 2])
        b = BitSet.from_indices(10, [2])
        r = a.__iand__(b)
        assert r is a
        assert sorted(a) == [2]

    def test_complement(self):
        a = BitSet.from_indices(5, [0, 2])
        assert sorted(a.complement()) == [1, 3, 4]

    def test_complement_tail_clean(self):
        a = BitSet.zeros(70)
        c = a.complement()
        assert c.count() == 70

    def test_universe_mismatch_raises(self):
        with pytest.raises(BitSetError):
            BitSet.zeros(10) & BitSet.zeros(11)

    def test_type_mismatch_raises(self):
        with pytest.raises(TypeError):
            BitSet.zeros(10) & {1, 2}

    def test_isdisjoint(self):
        a = BitSet.from_indices(10, [1])
        b = BitSet.from_indices(10, [2])
        assert a.isdisjoint(b)
        b.add(1)
        assert not a.isdisjoint(b)

    def test_issubset_issuperset(self):
        a = BitSet.from_indices(10, [1, 2])
        b = BitSet.from_indices(10, [1, 2, 3])
        assert a.issubset(b)
        assert b.issuperset(a)
        assert not b.issubset(a)

    def test_intersection_count(self):
        a = BitSet.from_indices(100, range(0, 60))
        b = BitSet.from_indices(100, range(50, 100))
        assert a.intersection_count(b) == 10

    def test_equality_and_hash(self):
        a = BitSet.from_indices(10, [1, 2])
        b = BitSet.from_indices(10, [2, 1])
        assert a == b
        assert hash(a) == hash(b)
        assert a != BitSet.from_indices(10, [1])
        assert a != BitSet.from_indices(11, [1, 2])

    def test_repr_contains_members(self):
        assert "3" in repr(BitSet.from_indices(10, [3]))

    def test_bool_is_any(self):
        assert not BitSet.zeros(10)
        assert BitSet.from_indices(10, [0])

    def test_nbytes(self):
        assert BitSet.zeros(64).nbytes() == 8
        assert BitSet.zeros(65).nbytes() == 16


# ---------------------------------------------------------------------------
# word-level helpers
# ---------------------------------------------------------------------------


class TestWordHelpers:
    def test_n_words(self):
        assert bs.n_words(0) == 0
        assert bs.n_words(1) == 1
        assert bs.n_words(64) == 1
        assert bs.n_words(65) == 2

    def test_n_words_negative(self):
        with pytest.raises(BitSetError):
            bs.n_words(-1)

    def test_tail_mask_full_word(self):
        assert bs.tail_mask(64) == np.uint64(0xFFFFFFFFFFFFFFFF)

    def test_tail_mask_partial(self):
        assert bs.tail_mask(3) == np.uint64(0b111)

    def test_words_andnot(self):
        a = bs.indices_to_words([1, 2], 10)
        b = bs.indices_to_words([2, 3], 10)
        out = np.zeros_like(a)
        bs.words_andnot(a, b, out)
        assert bs.words_to_indices(out, 10).tolist() == [1]

    def test_words_count(self):
        w = bs.indices_to_words([0, 63, 64, 127], 128)
        assert bs.words_count(w) == 4

    def test_words_any(self):
        assert not bs.words_any(np.zeros(2, dtype=np.uint64))
        assert bs.words_any(bs.indices_to_words([100], 128))


# ---------------------------------------------------------------------------
# property-based laws
# ---------------------------------------------------------------------------

universe = st.integers(min_value=1, max_value=200)


@st.composite
def bitset_pair(draw):
    n = draw(universe)
    idx = st.lists(
        st.integers(min_value=0, max_value=n - 1), max_size=n
    )
    a = BitSet.from_indices(n, draw(idx))
    b = BitSet.from_indices(n, draw(idx))
    return a, b


@settings(max_examples=50, deadline=None)
@given(bitset_pair())
def test_matches_python_sets(pair):
    """Every operation agrees with Python's set semantics."""
    a, b = pair
    sa, sb = set(a), set(b)
    assert set(a & b) == sa & sb
    assert set(a | b) == sa | sb
    assert set(a ^ b) == sa ^ sb
    assert set(a - b) == sa - sb
    assert a.isdisjoint(b) == sa.isdisjoint(sb)
    assert a.issubset(b) == (sa <= sb)
    assert (a & b).count() == a.intersection_count(b)


@settings(max_examples=50, deadline=None)
@given(bitset_pair())
def test_de_morgan(pair):
    a, b = pair
    assert (a & b).complement() == a.complement() | b.complement()
    assert (a | b).complement() == a.complement() & b.complement()


@settings(max_examples=50, deadline=None)
@given(bitset_pair())
def test_involution_and_absorption(pair):
    a, b = pair
    assert a.complement().complement() == a
    assert (a & (a | b)) == a
    assert (a | (a & b)) == a


@settings(max_examples=50, deadline=None)
@given(bitset_pair())
def test_count_inclusion_exclusion(pair):
    a, b = pair
    assert (a | b).count() == a.count() + b.count() - (a & b).count()


@settings(max_examples=30, deadline=None)
@given(universe, st.data())
def test_roundtrip_indices(n, data):
    idx = data.draw(
        st.lists(st.integers(min_value=0, max_value=n - 1), unique=True)
    )
    s = BitSet.from_indices(n, idx)
    assert s.to_indices().tolist() == sorted(idx)
    assert s.count() == len(idx)
