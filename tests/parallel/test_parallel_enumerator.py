"""Tests for trace recording and machine-replay simulation."""

from __future__ import annotations

import pytest

from repro.core.clique_enumerator import enumerate_maximal_cliques
from repro.core.generators import erdos_renyi, planted_partition
from repro.errors import ParameterError
from repro.parallel.machine import MachineSpec
from repro.parallel.parallel_enumerator import (
    record_trace,
    simulate_processor_sweep,
    simulate_run,
)


@pytest.fixture(scope="module")
def workload():
    g, _ = planted_partition(
        120, [12, 10, 10, 8, 8], p_in=0.95, p_out=0.03, seed=17
    )
    return g


@pytest.fixture(scope="module")
def trace(workload):
    return record_trace(workload, k_min=3)


@pytest.fixture(scope="module")
def spec():
    return MachineSpec(n_processors=1, seconds_per_work_unit=1e-6)


class TestRecordTrace:
    def test_output_matches_sequential(self, workload, trace):
        seq = enumerate_maximal_cliques(workload, k_min=3)
        assert sorted(trace.cliques) == sorted(seq.cliques)
        assert trace.total_maximal == len(seq.cliques)

    def test_levels_consecutive(self, trace):
        assert trace.level_ks == sorted(trace.level_ks)
        for a, b in zip(trace.level_ks, trace.level_ks[1:]):
            assert b == a + 1

    def test_work_positive(self, trace):
        assert trace.seed_work > 0
        assert trace.total_work() > trace.seed_work

    def test_parentage_valid(self, trace):
        known = {-1} | {
            r.item_id for lv in trace.levels for r in lv
        }
        for li, lv in enumerate(trace.levels):
            for r in lv:
                assert r.parent_id in known
                if li == 0:
                    assert r.parent_id == -1
                else:
                    assert r.parent_id >= 0

    def test_invalid_range(self, workload):
        with pytest.raises(ParameterError):
            record_trace(workload, k_min=5, k_max=4)

    def test_k_min_promoted_to_2(self):
        g = erdos_renyi(15, 0.3, seed=0)
        t = record_trace(g, k_min=1)
        assert t.k_min == 2

    def test_k_max_respected(self, workload):
        t = record_trace(workload, k_min=3, k_max=5)
        assert max(t.level_ks) < 5 or not t.level_ks
        assert all(len(c) <= 5 for c in t.cliques)


class TestSimulateRun:
    def test_single_processor_time_is_total_work(self, trace, spec):
        run = simulate_run(trace, spec)
        busy = run.clock.total_busy()
        assert busy == pytest.approx(
            trace.total_work() * spec.seconds_per_work_unit, rel=1e-9
        )

    def test_more_processors_not_slower_at_low_p(self, trace, spec):
        t1 = simulate_run(trace, spec.with_processors(1)).elapsed_seconds
        t2 = simulate_run(trace, spec.with_processors(2)).elapsed_seconds
        assert t2 < t1

    def test_speedup_at_most_ideal(self, trace, spec):
        t1 = simulate_run(trace, spec.with_processors(1)).elapsed_seconds
        for p in (2, 4, 8):
            tp = simulate_run(trace, spec.with_processors(p)).elapsed_seconds
            assert t1 / tp <= p + 1e-9

    def test_deterministic(self, trace, spec):
        a = simulate_run(trace, spec.with_processors(8))
        b = simulate_run(trace, spec.with_processors(8))
        assert a.elapsed_seconds == b.elapsed_seconds
        assert a.n_transfers == b.n_transfers

    def test_no_balance_never_faster(self, trace, spec):
        """Balancing must help (or tie) on every processor count."""
        for p in (2, 4, 8, 16):
            bal = simulate_run(
                trace, spec.with_processors(p), balance=True
            ).elapsed_seconds
            raw = simulate_run(
                trace, spec.with_processors(p), balance=False
            ).elapsed_seconds
            assert bal <= raw * 1.05, f"p={p}: balanced {bal} vs raw {raw}"

    def test_per_level_records(self, trace, spec):
        run = simulate_run(trace, spec.with_processors(4))
        levels = run.per_level()
        # seed level + one record per trace level
        assert len(levels) == len(trace.levels) + 1
        for lv in levels:
            assert len(lv.busy_seconds) == 4
            assert lv.wall_seconds >= max(lv.busy_seconds)

    def test_efficiency_bounded(self, trace, spec):
        t1 = simulate_run(trace, spec.with_processors(1))
        run = simulate_run(trace, spec.with_processors(4))
        eff = run.efficiency(t1.elapsed_seconds)
        assert 0.0 < eff <= 1.0 + 1e-9


class TestSweep:
    def test_sweep_contains_all_counts(self, trace, spec):
        runs = simulate_processor_sweep(trace, spec, [1, 2, 4])
        assert sorted(runs) == [1, 2, 4]
        assert all(r.elapsed_seconds > 0 for r in runs.values())

    def test_sync_dominates_eventually(self, trace):
        """With brutal sync costs, more processors must hurt."""
        expensive = MachineSpec(
            n_processors=1,
            seconds_per_work_unit=1e-9,
            sync_seconds_per_processor=1e-2,
        )
        runs = simulate_processor_sweep(trace, expensive, [1, 256])
        assert runs[256].elapsed_seconds > runs[1].elapsed_seconds
