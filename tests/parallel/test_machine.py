"""Tests for the simulated machine model."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.parallel.machine import LevelTiming, MachineSpec, VirtualClock


class TestMachineSpec:
    def test_defaults_valid(self):
        spec = MachineSpec(n_processors=4)
        assert spec.sync_cost() > 0

    def test_invalid_processors(self):
        with pytest.raises(ParameterError):
            MachineSpec(n_processors=0)

    def test_invalid_work_unit(self):
        with pytest.raises(ParameterError):
            MachineSpec(n_processors=1, seconds_per_work_unit=0)

    def test_remote_cheaper_than_local_rejected(self):
        with pytest.raises(ParameterError):
            MachineSpec(n_processors=1, remote_access_penalty=0.5)

    def test_negative_sync_rejected(self):
        with pytest.raises(ParameterError):
            MachineSpec(n_processors=1, sync_base_seconds=-1)

    def test_with_processors_preserves_other_fields(self):
        a = MachineSpec(n_processors=1, seconds_per_work_unit=1e-6)
        b = a.with_processors(16)
        assert b.n_processors == 16
        assert b.seconds_per_work_unit == 1e-6

    def test_sync_cost_grows_with_p(self):
        a = MachineSpec(n_processors=2)
        b = a.with_processors(256)
        assert b.sync_cost() > a.sync_cost()

    def test_work_seconds_remote_penalty(self):
        spec = MachineSpec(
            n_processors=1,
            seconds_per_work_unit=1.0,
            remote_access_penalty=2.0,
        )
        assert spec.work_seconds(3) == 3.0
        assert spec.work_seconds(3, remote=True) == 6.0


class TestLevelTiming:
    def test_wall_is_max_plus_sync(self):
        t = LevelTiming(
            k=3, busy_seconds=(1.0, 3.0, 2.0), sync_seconds=0.5,
            transfers=0, transferred_work=0,
        )
        assert t.wall_seconds == 3.5
        assert t.mean_busy == 2.0

    def test_std(self):
        t = LevelTiming(
            k=3, busy_seconds=(1.0, 3.0), sync_seconds=0.0,
            transfers=0, transferred_work=0,
        )
        assert t.std_busy == 1.0

    def test_empty_busy(self):
        t = LevelTiming(
            k=3, busy_seconds=(), sync_seconds=0.1,
            transfers=0, transferred_work=0,
        )
        assert t.wall_seconds == 0.1
        assert t.mean_busy == 0.0
        assert t.std_busy == 0.0


class TestVirtualClock:
    def test_accumulates(self):
        clock = VirtualClock()
        for k in (2, 3):
            clock.advance_level(
                LevelTiming(
                    k=k, busy_seconds=(1.0, 2.0), sync_seconds=0.5,
                    transfers=1, transferred_work=10,
                )
            )
        assert clock.elapsed_seconds == pytest.approx(5.0)
        assert clock.total_busy() == pytest.approx(6.0)
        assert clock.total_sync() == pytest.approx(1.0)
        assert len(clock.levels) == 2
