"""Tests for the real multiprocessing backend."""

from __future__ import annotations

import pytest

from repro.core.clique_enumerator import enumerate_maximal_cliques
from repro.core.generators import erdos_renyi, planted_partition
from repro.errors import ParameterError
from repro.parallel.mp_backend import enumerate_maximal_cliques_mp


@pytest.fixture(scope="module")
def workload():
    g, _ = planted_partition(
        80, [9, 8, 8], p_in=0.95, p_out=0.04, seed=31
    )
    return g


class TestMPBackend:
    def test_single_worker_matches_sequential(self, workload):
        seq = enumerate_maximal_cliques(workload, k_min=2)
        par = enumerate_maximal_cliques_mp(workload, n_workers=1)
        assert sorted(par.cliques) == sorted(seq.cliques)

    def test_two_workers_match_sequential(self, workload):
        seq = enumerate_maximal_cliques(workload, k_min=2)
        par = enumerate_maximal_cliques_mp(workload, n_workers=2)
        assert sorted(par.cliques) == sorted(seq.cliques)
        assert par.n_workers == 2

    def test_init_k_seeding(self, workload):
        seq = enumerate_maximal_cliques(workload, k_min=4)
        par = enumerate_maximal_cliques_mp(workload, k_min=4, n_workers=2)
        assert sorted(par.cliques) == sorted(seq.cliques)

    def test_k_max(self, workload):
        seq = enumerate_maximal_cliques(workload, k_min=2, k_max=4)
        par = enumerate_maximal_cliques_mp(
            workload, k_max=4, n_workers=2
        )
        assert sorted(par.cliques) == sorted(seq.cliques)

    def test_non_decreasing_order_preserved(self, workload):
        par = enumerate_maximal_cliques_mp(workload, n_workers=2)
        sizes = [len(c) for c in par.cliques]
        assert sizes == sorted(sizes)

    def test_invalid_range(self, workload):
        with pytest.raises(ParameterError):
            enumerate_maximal_cliques_mp(workload, k_min=5, k_max=4)

    def test_empty_graph(self):
        from repro.core.graph import Graph

        par = enumerate_maximal_cliques_mp(Graph(0), n_workers=2)
        assert par.cliques == []

    def test_random_graph_matches(self):
        g = erdos_renyi(40, 0.3, seed=9)
        seq = enumerate_maximal_cliques(g, k_min=2)
        par = enumerate_maximal_cliques_mp(g, n_workers=2)
        assert sorted(par.cliques) == sorted(seq.cliques)
