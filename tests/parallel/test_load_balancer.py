"""Tests for the centralised dynamic load balancer."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.parallel.load_balancer import LoadBalancer, WorkItem


def items_from(estimates, owner=0):
    return [
        WorkItem(item_id=i, estimate=e, true_work=e, owner=owner)
        for i, e in enumerate(estimates)
    ]


class TestConstruction:
    def test_invalid_processors(self):
        with pytest.raises(ParameterError):
            LoadBalancer(0, 100)

    def test_invalid_penalty(self):
        with pytest.raises(ParameterError):
            LoadBalancer(2, 100, remote_penalty=0.9)

    def test_negative_tolerance(self):
        with pytest.raises(ParameterError):
            LoadBalancer(2, 100, rel_tolerance=-0.1)


class TestInitialDistribution:
    def test_even_split(self):
        lb = LoadBalancer(4, 100)
        items = items_from([10] * 8)
        lb.initial_distribution(items)
        loads = lb.loads(items)
        assert all(l == 20 for l in loads)

    def test_lpt_on_skewed(self):
        lb = LoadBalancer(2, 100)
        items = items_from([9, 5, 4, 2])
        lb.initial_distribution(items)
        loads = sorted(lb.loads(items))
        assert loads == [9, 11]  # LPT: 9+2 vs 5+4... -> [10,10] or [9,11]
        # LPT: 9->p0, 5->p1, 4->p1(9 vs 9: tie to lower index? p1 has 5)
        # just assert near-balance
        assert max(loads) - min(loads) <= 2

    def test_seed_items_local(self):
        lb = LoadBalancer(2, 100)
        items = items_from([5, 5])
        items[0].remote = True
        lb.initial_distribution(items)
        assert not any(it.remote for it in items)


class TestRebalance:
    def test_single_processor_noop(self):
        lb = LoadBalancer(1, 100)
        items = items_from([5, 5])
        decision = lb.rebalance(items)
        assert decision.n_transfers == 0

    def test_empty_noop(self):
        lb = LoadBalancer(4, 100)
        assert lb.rebalance([]).n_transfers == 0

    def test_skewed_load_transfers(self):
        lb = LoadBalancer(2, 10, abs_floor_per_vertex=0.0)
        items = items_from([10, 10, 10, 10], owner=0)
        decision = lb.rebalance(items)
        assert decision.n_transfers >= 1
        loads = lb.loads(items)
        assert max(loads) < 40  # some work moved off the hoarder

    def test_transferred_items_marked_remote(self):
        lb = LoadBalancer(2, 10, abs_floor_per_vertex=0.0)
        items = items_from([10, 10, 10, 10], owner=0)
        lb.rebalance(items)
        moved = [it for it in items if it.owner == 1]
        assert moved
        assert all(it.remote for it in moved)

    def test_balanced_load_untouched(self):
        lb = LoadBalancer(2, 10)
        items = items_from([10, 10])
        items[1].owner = 1
        decision = lb.rebalance(items)
        assert decision.n_transfers == 0
        assert not any(it.remote for it in items)

    def test_threshold_respects_floor(self):
        lb = LoadBalancer(2, graph_size=1000, abs_floor_per_vertex=1.0)
        # gap of 20 < floor of 1000: no transfers
        items = items_from([30, 10])
        items[1].owner = 1
        assert lb.rebalance(items).n_transfers == 0

    def test_terminates_on_unmovable(self):
        lb = LoadBalancer(2, 1, abs_floor_per_vertex=0.0)
        # single huge item: cannot split, must not loop forever
        items = items_from([100])
        decision = lb.rebalance(items)
        assert decision.n_transfers <= 1


class TestThreshold:
    def test_relative_term(self):
        lb = LoadBalancer(4, 0, rel_tolerance=0.5, abs_floor_per_vertex=0)
        assert lb.threshold(80) == pytest.approx(10.0)

    def test_floor_term(self):
        lb = LoadBalancer(4, 100, rel_tolerance=0.0,
                          abs_floor_per_vertex=2.0)
        assert lb.threshold(80) == pytest.approx(200.0)


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=16),
    st.lists(st.integers(min_value=1, max_value=500), max_size=60),
    st.integers(min_value=0, max_value=15),
)
def test_rebalance_always_terminates_and_helps(p, estimates, owner_mod):
    lb = LoadBalancer(p, 10, abs_floor_per_vertex=0.0)
    items = [
        WorkItem(item_id=i, estimate=e, true_work=e,
                 owner=i % (owner_mod + 1) % p)
        for i, e in enumerate(estimates)
    ]
    before = lb.loads(items)
    gap_before = (max(before) - min(before)) if before else 0
    decision = lb.rebalance(items)
    after = lb.loads(items)
    assert decision.n_transfers < lb.max_rounds
    # every item still owned by a valid processor
    assert all(0 <= it.owner < p for it in items)
    # booked imbalance never worsens
    lb2 = LoadBalancer(p, 10, abs_floor_per_vertex=0.0)
    booked_after = [0.0] * p
    for it in items:
        booked_after[it.owner] += lb2._cost(it)
    if p > 1 and gap_before > 0:
        assert max(booked_after) - min(booked_after) <= gap_before + 1e-9


class TestPartition:
    def test_payloads_follow_lpt_owners(self):
        lb = LoadBalancer(3, 100)
        payloads = ["a", "b", "c", "d", "e", "f"]
        parts = lb.partition(payloads, [9, 1, 8, 1, 7, 1])
        assert sorted(sum(parts, [])) == sorted(payloads)
        # each worker keeps its payloads in the original canonical order
        order = {p: i for i, p in enumerate(payloads)}
        for part in parts:
            assert [order[p] for p in part] == sorted(
                order[p] for p in part
            )

    def test_length_mismatch_rejected(self):
        with pytest.raises(ParameterError, match="estimates"):
            LoadBalancer(2, 10).partition(["a"], [1, 2])


class TestStealingWorkQueue:
    def _seeded(self, granularity=2):
        from repro.parallel.load_balancer import StealingWorkQueue

        q = StealingWorkQueue(3, steal_granularity=granularity)
        q.seed(0, [("a0", 5), ("a1", 5), ("a2", 5)])
        q.seed(1, [("b0", 50), ("b1", 40), ("b2", 30), ("b3", 20)])
        # worker 2 starts empty: its first take must be a steal
        return q

    def test_validation(self):
        from repro.parallel.load_balancer import StealingWorkQueue

        with pytest.raises(ParameterError, match="worker count"):
            StealingWorkQueue(0)
        with pytest.raises(ParameterError, match="steal_granularity"):
            StealingWorkQueue(2, steal_granularity=0)

    def test_local_chunks_drain_front_to_back(self):
        q = self._seeded(granularity=2)
        assert q.take(0) == ["a0", "a1"]
        assert q.take(0) == ["a2"]
        assert q.steals == 0

    def test_empty_worker_steals_from_heaviest_tail(self):
        q = self._seeded(granularity=2)
        # worker 1 carries the most estimated work; its *tail* moves,
        # and the stolen slice comes back in canonical order
        assert q.take(2) == ["b2", "b3"]
        assert q.steals == 1
        assert q.stolen_items == 2
        assert q.stolen_estimate == 50
        # victim's cache-warm front is untouched
        assert q.take(1) == ["b0", "b1"]

    def test_exhaustion_returns_none_for_everyone(self):
        q = self._seeded(granularity=8)
        drained = []
        while True:
            chunk = q.take(2)
            if chunk is None:
                break
            drained.extend(chunk)
        assert sorted(drained) == ["a0", "a1", "a2", "b0", "b1", "b2", "b3"]
        assert q.take(0) is None
        assert q.take(1) is None
        assert q.remaining() == 0

    def test_loads_track_remaining_estimate(self):
        q = self._seeded(granularity=1)
        assert q.loads() == [15, 140, 0]
        assert q.take(0) == ["a0", "a1"]  # half of the own pool
        assert q.loads() == [5, 140, 0]
        q.take(2)  # steals b3 (estimate 20) from worker 1's tail
        assert q.loads() == [5, 120, 0]

    def test_local_halving_leaves_tail_stealable(self):
        from repro.parallel.load_balancer import StealingWorkQueue

        q = StealingWorkQueue(2, steal_granularity=1)
        q.seed(0, [(i, 1) for i in range(8)])
        assert q.take(0) == [0, 1, 2, 3]  # half of 8
        assert q.take(1) == [7]           # thief takes from the tail
        assert q.take(0) == [4, 5]        # half of the remaining 3

    def test_from_partition_covers_every_payload(self):
        from repro.parallel.load_balancer import StealingWorkQueue

        payloads = list(range(20))
        estimates = [(i * 7) % 13 + 1 for i in range(20)]
        q = StealingWorkQueue.from_partition(
            payloads, estimates, 4, graph_size=50, steal_granularity=3
        )
        assert q.remaining() == 20
        seen = []
        while True:
            chunk = q.take(3)
            if chunk is None:
                break
            seen.extend(chunk)
        assert sorted(seen) == payloads

    def test_concurrent_drain_loses_nothing(self):
        """Hammer one queue from real threads: every item exactly once."""
        import threading as _threading

        from repro.parallel.load_balancer import StealingWorkQueue

        q = StealingWorkQueue(4, steal_granularity=3)
        items = [(f"item-{i}", (i % 11) + 1) for i in range(400)]
        for w in range(4):
            q.seed(w, items[w::4])
        taken: list[list] = [[] for _ in range(4)]

        def drain(w):
            while True:
                chunk = q.take(w)
                if chunk is None:
                    return
                taken[w].extend(chunk)

        threads = [
            _threading.Thread(target=drain, args=(w,)) for w in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not any(t.is_alive() for t in threads)
        flat = sum(taken, [])
        assert sorted(flat) == sorted(p for p, _ in items)
        assert len(flat) == len(set(flat)) == 400
        assert q.remaining() == 0
