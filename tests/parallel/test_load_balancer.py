"""Tests for the centralised dynamic load balancer."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.parallel.load_balancer import LoadBalancer, WorkItem


def items_from(estimates, owner=0):
    return [
        WorkItem(item_id=i, estimate=e, true_work=e, owner=owner)
        for i, e in enumerate(estimates)
    ]


class TestConstruction:
    def test_invalid_processors(self):
        with pytest.raises(ParameterError):
            LoadBalancer(0, 100)

    def test_invalid_penalty(self):
        with pytest.raises(ParameterError):
            LoadBalancer(2, 100, remote_penalty=0.9)

    def test_negative_tolerance(self):
        with pytest.raises(ParameterError):
            LoadBalancer(2, 100, rel_tolerance=-0.1)


class TestInitialDistribution:
    def test_even_split(self):
        lb = LoadBalancer(4, 100)
        items = items_from([10] * 8)
        lb.initial_distribution(items)
        loads = lb.loads(items)
        assert all(l == 20 for l in loads)

    def test_lpt_on_skewed(self):
        lb = LoadBalancer(2, 100)
        items = items_from([9, 5, 4, 2])
        lb.initial_distribution(items)
        loads = sorted(lb.loads(items))
        assert loads == [9, 11]  # LPT: 9+2 vs 5+4... -> [10,10] or [9,11]
        # LPT: 9->p0, 5->p1, 4->p1(9 vs 9: tie to lower index? p1 has 5)
        # just assert near-balance
        assert max(loads) - min(loads) <= 2

    def test_seed_items_local(self):
        lb = LoadBalancer(2, 100)
        items = items_from([5, 5])
        items[0].remote = True
        lb.initial_distribution(items)
        assert not any(it.remote for it in items)


class TestRebalance:
    def test_single_processor_noop(self):
        lb = LoadBalancer(1, 100)
        items = items_from([5, 5])
        decision = lb.rebalance(items)
        assert decision.n_transfers == 0

    def test_empty_noop(self):
        lb = LoadBalancer(4, 100)
        assert lb.rebalance([]).n_transfers == 0

    def test_skewed_load_transfers(self):
        lb = LoadBalancer(2, 10, abs_floor_per_vertex=0.0)
        items = items_from([10, 10, 10, 10], owner=0)
        decision = lb.rebalance(items)
        assert decision.n_transfers >= 1
        loads = lb.loads(items)
        assert max(loads) < 40  # some work moved off the hoarder

    def test_transferred_items_marked_remote(self):
        lb = LoadBalancer(2, 10, abs_floor_per_vertex=0.0)
        items = items_from([10, 10, 10, 10], owner=0)
        lb.rebalance(items)
        moved = [it for it in items if it.owner == 1]
        assert moved
        assert all(it.remote for it in moved)

    def test_balanced_load_untouched(self):
        lb = LoadBalancer(2, 10)
        items = items_from([10, 10])
        items[1].owner = 1
        decision = lb.rebalance(items)
        assert decision.n_transfers == 0
        assert not any(it.remote for it in items)

    def test_threshold_respects_floor(self):
        lb = LoadBalancer(2, graph_size=1000, abs_floor_per_vertex=1.0)
        # gap of 20 < floor of 1000: no transfers
        items = items_from([30, 10])
        items[1].owner = 1
        assert lb.rebalance(items).n_transfers == 0

    def test_terminates_on_unmovable(self):
        lb = LoadBalancer(2, 1, abs_floor_per_vertex=0.0)
        # single huge item: cannot split, must not loop forever
        items = items_from([100])
        decision = lb.rebalance(items)
        assert decision.n_transfers <= 1


class TestThreshold:
    def test_relative_term(self):
        lb = LoadBalancer(4, 0, rel_tolerance=0.5, abs_floor_per_vertex=0)
        assert lb.threshold(80) == pytest.approx(10.0)

    def test_floor_term(self):
        lb = LoadBalancer(4, 100, rel_tolerance=0.0,
                          abs_floor_per_vertex=2.0)
        assert lb.threshold(80) == pytest.approx(200.0)


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=16),
    st.lists(st.integers(min_value=1, max_value=500), max_size=60),
    st.integers(min_value=0, max_value=15),
)
def test_rebalance_always_terminates_and_helps(p, estimates, owner_mod):
    lb = LoadBalancer(p, 10, abs_floor_per_vertex=0.0)
    items = [
        WorkItem(item_id=i, estimate=e, true_work=e, owner=i % (owner_mod + 1) % p)
        for i, e in enumerate(estimates)
    ]
    before = lb.loads(items)
    gap_before = (max(before) - min(before)) if before else 0
    decision = lb.rebalance(items)
    after = lb.loads(items)
    assert decision.n_transfers < lb.max_rounds
    # every item still owned by a valid processor
    assert all(0 <= it.owner < p for it in items)
    # booked imbalance never worsens
    lb2 = LoadBalancer(p, 10, abs_floor_per_vertex=0.0)
    booked_after = [0.0] * p
    for it in items:
        booked_after[it.owner] += lb2._cost(it)
    if p > 1 and gap_before > 0:
        assert max(booked_after) - min(booked_after) <= gap_before + 1e-9
