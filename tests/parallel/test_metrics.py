"""Tests for speedup and load-balance metrics."""

from __future__ import annotations

import pytest

from repro.core.generators import planted_partition
from repro.parallel.machine import MachineSpec
from repro.parallel.metrics import (
    absolute_speedup,
    load_balance_stats,
    relative_speedups,
    speedup_table,
)
from repro.parallel.parallel_enumerator import (
    record_trace,
    simulate_processor_sweep,
)


@pytest.fixture(scope="module")
def runs():
    g, _ = planted_partition(
        90, [10, 9, 8, 8], p_in=0.95, p_out=0.04, seed=23
    )
    trace = record_trace(g, k_min=3)
    spec = MachineSpec(n_processors=1, seconds_per_work_unit=1e-6)
    return simulate_processor_sweep(trace, spec, [1, 2, 4, 8, 16])


class TestSpeedups:
    def test_absolute_baseline_is_one(self, runs):
        abs_sp = absolute_speedup(runs)
        assert abs_sp[1] == pytest.approx(1.0)

    def test_absolute_monotone_initially(self, runs):
        abs_sp = absolute_speedup(runs)
        assert abs_sp[2] > 1.0
        assert abs_sp[4] > abs_sp[2] * 0.9

    def test_absolute_requires_p1(self, runs):
        partial = {p: r for p, r in runs.items() if p != 1}
        with pytest.raises(ValueError):
            absolute_speedup(partial)

    def test_relative_keys_are_doublings(self, runs):
        rel = relative_speedups(runs)
        assert sorted(rel) == [2, 4, 8, 16]
        for v in rel.values():
            assert 0.5 < v <= 2.0 + 1e-9

    def test_speedup_table_rows(self, runs):
        rows = speedup_table(runs)
        assert [r[0] for r in rows] == [1, 2, 4, 8, 16]
        for p, tp, sp, eff in rows:
            assert tp > 0
            assert 0 < eff <= 1.0 + 1e-9


class TestLoadBalance:
    def test_stats_fields(self, runs):
        stats = load_balance_stats(runs[4])
        assert stats.n_processors == 4
        assert stats.mean_busy > 0
        assert stats.std_busy >= 0
        assert 0 <= stats.std_over_mean < 1

    def test_single_processor_perfectly_balanced(self, runs):
        stats = load_balance_stats(runs[1])
        assert stats.std_busy == pytest.approx(0.0)

    def test_balanced_within_paper_bound(self, runs):
        """The paper's Figure 8 criterion: std within 10% of mean."""
        for p in (2, 4, 8):
            assert load_balance_stats(runs[p]).std_over_mean <= 0.10
