"""Measured load balance of real threaded runs (the paper's Figure 8).

``load_balance_stats`` covers the simulator; these tests cover the
measured analogue: per-worker busy seconds recorded by
:class:`~repro.parallel.thread_backend.ThreadedExpander` and folded
into ``EnumerationResult.load_balance`` by the ``threads`` backend.
"""

from __future__ import annotations

import math

import pytest

from repro.core.generators import planted_clique
from repro.engine.api import run_enumeration
from repro.engine.config import EnumerationConfig
from repro.parallel.metrics import (
    BALANCE_TOLERANCE,
    worker_load_balance,
)


class TestWorkerLoadBalance:
    def test_statistics_of_a_known_sample(self):
        stats = worker_load_balance(
            [2.0, 4.0], transfers=3, max_level_imbalance=0.5
        )
        assert stats.n_processors == 2
        assert stats.mean_busy == 3.0
        assert stats.std_busy == pytest.approx(1.0)
        assert stats.std_over_mean == pytest.approx(1.0 / 3.0)
        assert stats.n_transfers == 3
        assert not stats.balanced

    def test_uniform_load_is_balanced(self):
        stats = worker_load_balance([1.0, 1.0, 1.0, 1.0])
        assert stats.std_busy == 0.0
        assert stats.std_over_mean == 0.0
        assert stats.balanced

    def test_balance_threshold_is_the_papers_ten_percent(self):
        assert BALANCE_TOLERANCE == 0.10
        # two workers at mu +/- sigma have std exactly sigma
        under = worker_load_balance([0.91, 1.09])
        assert under.std_over_mean == pytest.approx(0.09)
        assert under.balanced
        over = worker_load_balance([0.89, 1.11])
        assert over.std_over_mean == pytest.approx(0.11)
        assert not over.balanced

    def test_empty_sample_is_all_zero(self):
        stats = worker_load_balance([])
        assert stats.n_processors == 0
        assert stats.mean_busy == 0.0
        assert stats.std_over_mean == 0.0

    def test_to_dict_is_json_safe_and_complete(self):
        d = worker_load_balance([1.0, 2.0], transfers=1).to_dict()
        assert set(d) == {
            "n_workers", "mean_busy", "std_busy", "std_over_mean",
            "max_level_imbalance", "transfers", "balanced",
        }
        assert all(
            isinstance(v, (int, float, bool)) for v in d.values()
        )
        assert not any(
            isinstance(v, float) and math.isnan(v) for v in d.values()
        )


class TestThreadsRunMeasurement:
    @pytest.fixture
    def graph(self):
        return planted_clique(60, 7, p=0.3, seed=3)[0]

    def test_threads_result_carries_load_balance(self, graph):
        result = run_enumeration(
            graph, EnumerationConfig(k_min=3, backend="threads", jobs=2)
        )
        balance = result.load_balance
        assert balance is not None
        assert balance["n_workers"] == 2
        assert balance["mean_busy"] > 0
        assert balance["std_over_mean"] >= 0
        assert balance["transfers"] == result.transfers
        assert isinstance(balance["balanced"], bool)

    def test_sequential_result_has_none(self, graph):
        result = run_enumeration(graph, EnumerationConfig(k_min=3))
        assert result.load_balance is None

    def test_single_worker_narrow_run_has_none(self):
        # every level is below the parallel threshold: the pool never
        # spins up, so there is no balance evidence to report
        tiny = planted_clique(6, 3, p=0.2, seed=1)[0]
        result = run_enumeration(
            tiny, EnumerationConfig(backend="threads", jobs=1)
        )
        assert result.load_balance is None
