"""The shared-memory threaded backend: correctness and concurrency stress.

Equivalence of the ``"threads"`` registry entry is continuously covered
by ``tests/engine/test_property_harness.py``; this suite targets what
only the threaded substrate can get wrong — oversubscription, stealing
under skew, exception propagation out of the worker pool, pool
lifecycle, and degenerate inputs — plus the
:class:`~repro.parallel.thread_backend.ThreadedExpander` surface
directly.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import BudgetExceeded, ParameterError
from repro.core.counters import OpCounters
from repro.core.generators import (
    complete_graph,
    erdos_renyi,
    overlapping_cliques,
    planted_partition,
    star_graph,
)
from repro.core.graph import Graph
from repro.engine import EnumerationConfig, EnumerationEngine
from repro.parallel.thread_backend import (
    ThreadedExpander,
    resolve_worker_count,
)

ENGINE = EnumerationEngine()


def _run(g, backend="threads", on_clique=None, **kw):
    return ENGINE.run(
        g, EnumerationConfig(backend=backend, **kw), on_clique=on_clique
    )


def _settled_thread_count(baseline: int, timeout: float = 5.0) -> int:
    """Active threads once transient pool threads have exited."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        now = threading.active_count()
        if now <= baseline:
            return now
        time.sleep(0.01)
    return threading.active_count()


class TestResolveWorkerCount:
    def test_explicit(self):
        assert resolve_worker_count(3) == 3

    def test_default_positive(self):
        assert resolve_worker_count(None) >= 1

    def test_invalid(self):
        with pytest.raises(ParameterError, match="jobs"):
            resolve_worker_count(0)


class TestExpanderSurface:
    def test_validates_workers_and_granularity(self):
        with pytest.raises(ParameterError, match="worker count"):
            ThreadedExpander(0)
        with pytest.raises(ParameterError, match="steal_granularity"):
            ThreadedExpander(2, steal_granularity=0)

    def test_close_is_idempotent(self):
        expander = ThreadedExpander(2)
        expander.close()
        expander.close()

    def test_pool_is_lazy(self):
        with ThreadedExpander(4) as expander:
            assert expander._pool is None
            counters = OpCounters()
            assert expander.step([], Graph(3), counters, lambda c: None) == []
            # nothing to parallelise: still no pool
            assert expander._pool is None

    def test_expander_reusable_across_levels(self):
        g = planted_partition(
            50, [8, 7, 6], p_in=0.95, p_out=0.04, seed=2
        )[0]
        ref = _run(g, backend="incore", k_min=2)
        with ThreadedExpander(3, steal_granularity=1) as expander:
            from repro.engine.level_loop import run_level_loop
            from repro.engine.level_store import MemoryLevelStore

            res = run_level_loop(
                g,
                EnumerationConfig(backend="threads", k_min=2),
                None,
                step=expander.step,
                store_factory=MemoryLevelStore,
                backend="threads",
            )
        assert res.cliques == ref.cliques


class TestDegenerateInputs:
    @pytest.mark.parametrize("jobs", [1, 2, 6])
    def test_empty_graph(self, jobs):
        res = _run(Graph(0), jobs=jobs, k_min=1)
        assert res.cliques == []
        assert res.completed

    @pytest.mark.parametrize("jobs", [1, 2, 6])
    def test_single_vertex(self, jobs):
        res = _run(Graph(1), jobs=jobs, k_min=1)
        assert res.cliques == [(0,)]

    def test_single_edge(self):
        res = _run(Graph.from_edges(2, [(0, 1)]), jobs=4, k_min=1)
        assert res.cliques == [(0, 1)]

    def test_star_single_sublist(self):
        """A star is one giant sub-list: nothing to steal, still right."""
        g = star_graph(40)
        assert _run(g, jobs=4, k_min=2).cliques == _run(
            g, backend="incore", k_min=2
        ).cliques

    def test_complete_graph(self):
        assert _run(complete_graph(9), jobs=3, k_min=1).cliques == [
            tuple(range(9))
        ]


@pytest.mark.stress
class TestConcurrencyStress:
    def test_oversubscribed_workers_finest_stealing(self):
        """Workers far beyond cores, steal slices of one: max contention."""
        g = planted_partition(
            80, [10, 9, 8, 7], p_in=0.9, p_out=0.05, seed=6
        )[0]
        ref = _run(g, backend="incore", k_min=1)
        res = _run(
            g, jobs=16, k_min=1, options={"steal_granularity": 1}
        )
        assert res.cliques == ref.cliques
        assert res.counters.snapshot() == ref.counters.snapshot()
        assert res.n_workers == 16

    def test_stealing_reported_as_transfers(self):
        """With more workers than seed sub-lists some pools start empty,
        so any observed transfer traffic is genuine stealing; output
        stays canonical regardless of how much occurred."""
        g = erdos_renyi(60, 0.2, seed=13)
        res = _run(g, jobs=8, k_min=2, options={"steal_granularity": 1})
        assert res.transfers >= 0
        assert res.cliques == _run(g, backend="incore", k_min=2).cliques

    def test_transfers_wired_from_expander_accounting(self, monkeypatch):
        """`result.transfers` is the expander's stolen-sub-list tally —
        pinned deterministically by substituting an expander that
        reports a known count (steal timing itself is nondeterministic,
        so the integration tests above can only assert >= 0)."""
        from repro.parallel import thread_backend as tb

        from repro.core.clique_enumerator import generate_next_level

        class FakeExpander(tb.ThreadedExpander):
            def __init__(self, n_workers, steal_granularity, **kw):
                super().__init__(n_workers, steal_granularity, **kw)
                self.stolen_sublists = 7

            def step(self, sublists, g, counters, emit):
                # expand inline: no queue, so the tally stays put
                return generate_next_level(sublists, g, counters, emit)

        monkeypatch.setattr(tb, "ThreadedExpander", FakeExpander)
        g = planted_partition(
            40, [7, 6], p_in=0.95, p_out=0.05, seed=1
        )[0]
        res = _run(g, jobs=2, k_min=2)
        assert res.transfers == 7
        assert res.n_workers == 2
        monkeypatch.undo()
        # the real inline single-worker path reports zero traffic
        assert _run(g, jobs=1, k_min=2).transfers == 0

    def test_sink_exception_propagates_without_deadlock(self):
        """A raising sink fails the run and leaves no worker behind."""
        g = planted_partition(
            60, [9, 8, 7], p_in=0.9, p_out=0.04, seed=4
        )[0]
        baseline = threading.active_count()

        class Boom(RuntimeError):
            pass

        seen = 0

        def sink(clique):
            nonlocal seen
            seen += 1
            if seen >= 3:
                raise Boom("sink rejected clique")

        with pytest.raises(Boom):
            _run(g, jobs=4, k_min=2, on_clique=sink)
        # the runner's pool is joined before the exception leaves the
        # backend — no enum-thread workers may linger
        assert _settled_thread_count(baseline) <= baseline
        # and the engine is immediately reusable
        res = _run(g, jobs=4, k_min=2)
        assert res.cliques == _run(g, backend="incore", k_min=2).cliques

    def test_cancellation_style_exception_mid_level(self):
        """A cancellation raised by the emit path aborts between levels
        without hanging the pool (the service's cooperative cancel)."""

        class Cancelled(Exception):
            pass

        g = overlapping_cliques(80, [9, 8, 8, 7], 3, p=0.02, seed=5)[0]
        baseline = threading.active_count()
        cancel = threading.Event()
        cancel.set()

        def emit(clique):
            if cancel.is_set():
                raise Cancelled

        with pytest.raises(Cancelled):
            _run(g, jobs=4, k_min=2, on_clique=emit)
        assert _settled_thread_count(baseline) <= baseline

    def test_budget_trips_at_the_same_clique_as_incore(self):
        g = planted_partition(
            50, [8, 7, 6], p_in=0.9, p_out=0.05, seed=8
        )[0]
        with pytest.raises(BudgetExceeded) as thr:
            _run(g, jobs=4, k_min=2, max_cliques=5)
        with pytest.raises(BudgetExceeded) as seq:
            _run(g, backend="incore", k_min=2, max_cliques=5)
        assert thr.value.emitted == seq.value.emitted
        assert thr.value.level == seq.value.level

    def test_many_runs_are_deterministic(self):
        """Repeated threaded runs interleave differently but must emit
        the byte-identical sequence every time."""
        g = erdos_renyi(50, 0.25, seed=3)
        first = _run(
            g, jobs=6, k_min=1, options={"steal_granularity": 2}
        )
        for _ in range(4):
            again = _run(
                g, jobs=6, k_min=1, options={"steal_granularity": 2}
            )
            assert again.cliques == first.cliques
            assert (
                again.counters.snapshot() == first.counters.snapshot()
            )

    def test_level_store_matrix_under_oversubscription(self):
        g = planted_partition(
            60, [9, 8, 7], p_in=0.9, p_out=0.04, seed=11
        )[0]
        ref = _run(g, backend="incore", k_min=1)
        for store in ("memory", "disk", "wah"):
            res = _run(g, jobs=8, k_min=1, level_store=store)
            assert res.cliques == ref.cliques, store


class TestEmissionBatching:
    """The batched sink path: one budget check per chunk, same bytes."""

    @staticmethod
    def _emitter(max_cliques=None, on_clique=None, level=7):
        from repro.core.clique_enumerator import EnumerationResult
        from repro.engine.level_loop import make_emitter

        result = EnumerationResult(
            counters=OpCounters(), k_min=1, k_max=None, backend="incore"
        )
        config = EnumerationConfig(max_cliques=max_cliques)
        return result, make_emitter(
            result, config, on_clique, lambda: level
        )

    def test_batch_collects_like_per_clique(self):
        cliques = [(i, i + 1) for i in range(10)]
        result_a, emit_a = self._emitter()
        for c in cliques:
            emit_a(c)
        result_b, emit_b = self._emitter()
        emit_b.batch(cliques[:4])
        emit_b.batch(cliques[4:])
        assert result_b.cliques == result_a.cliques == cliques

    def test_batch_budget_delivers_then_trips_like_per_clique(self):
        cliques = [(i, i + 1) for i in range(10)]
        result_a, emit_a = self._emitter(max_cliques=6)
        with pytest.raises(BudgetExceeded) as seq:
            for c in cliques:
                emit_a(c)
        result_b, emit_b = self._emitter(max_cliques=6)
        emit_b.batch(cliques[:4])
        with pytest.raises(BudgetExceeded) as bat:
            emit_b.batch(cliques[4:])
        # everything the budget allows is delivered, then the trip
        # reports the same emitted count and level either way
        assert result_b.cliques == result_a.cliques == cliques[:6]
        assert bat.value.emitted == seq.value.emitted == 6
        assert bat.value.level == seq.value.level == 7

    def test_batch_exactly_at_budget_does_not_trip(self):
        cliques = [(i,) for i in range(5)]
        result, emit = self._emitter(max_cliques=5)
        emit.batch(cliques)
        assert result.cliques == cliques
        with pytest.raises(BudgetExceeded):
            emit((99,))

    def test_batch_streams_through_on_clique(self):
        seen = []
        _, emit = self._emitter(on_clique=seen.append)
        emit.batch([(1, 2), (2, 3)])
        assert seen == [(1, 2), (2, 3)]

    def test_expander_chunks_through_the_batch_method(self):
        from repro.parallel.thread_backend import EMIT_BATCH

        chunks = []

        def emit(clique):
            raise AssertionError("batched path must be preferred")

        emit.batch = lambda cliques: chunks.append(len(cliques))
        with ThreadedExpander(n_workers=2) as exp:
            exp._emit_cliques(
                [(i,) for i in range(2 * EMIT_BATCH + 5)], emit
            )
        assert chunks == [EMIT_BATCH, EMIT_BATCH, 5]

    def test_expander_falls_back_to_bare_callables(self):
        seen = []
        with ThreadedExpander(n_workers=2) as exp:
            exp._emit_cliques([(1,), (2,)], seen.append)
        assert seen == [(1,), (2,)]
