"""Tests for extreme pathway enumeration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bio.extreme_pathways import extreme_pathways
from repro.bio.stoichiometry import MetabolicNetwork, Reaction, example_network
from repro.errors import SolverError


class TestExampleNetwork:
    def test_three_pathways(self):
        res = extreme_pathways(example_network())
        assert len(res) == 3

    def test_pathways_are_the_known_routes(self):
        res = extreme_pathways(example_network())
        names = res.reaction_names
        as_dicts = [
            {n: f for n, f in zip(names, p) if f}
            for p in res.pathways
        ]
        expected = [
            {"uptake": 1, "v1": 1, "drainB": 1},
            {"uptake": 1, "v2": 1, "v3": 1, "drainB": 1},
            {"uptake": 1, "v2": 1, "drainC": 1},
        ]
        for e in expected:
            assert e in as_dicts

    def test_all_steady_state(self):
        net = example_network()
        res = extreme_pathways(net)
        for p in res.pathways:
            assert net.flux_is_steady(np.asarray(p, dtype=float))

    def test_matrix_view(self):
        res = extreme_pathways(example_network())
        m = res.as_matrix()
        assert m.shape == (3, 6)

    def test_active_reactions(self):
        res = extreme_pathways(example_network())
        for i in range(len(res)):
            active = res.active_reactions(i)
            assert "uptake" in active


class TestLinearChain:
    def test_single_path(self):
        net = MetabolicNetwork(
            [
                Reaction("in", {"Xext": -1, "A": 1}),
                Reaction("mid", {"A": -1, "B": 1}),
                Reaction("out", {"B": -1, "Yext": 1}),
            ],
            external={"Xext", "Yext"},
        )
        res = extreme_pathways(net)
        assert res.pathways == [(1, 1, 1)]

    def test_dead_end_has_no_pathway(self):
        net = MetabolicNetwork(
            [
                Reaction("in", {"Xext": -1, "A": 1}),
                Reaction("mid", {"A": -1, "B": 1}),
            ],
            external={"Xext"},
        )
        res = extreme_pathways(net)
        assert len(res) == 0


class TestReversible:
    def test_reversible_collapses_two_cycle(self):
        net = MetabolicNetwork(
            [
                Reaction("in", {"Xext": -1, "A": 1}),
                Reaction("rev", {"A": -1, "B": 1}, reversible=True),
                Reaction("out", {"B": -1, "Yext": 1}),
            ],
            external={"Xext", "Yext"},
        )
        res = extreme_pathways(net)
        # the forward route only; the fwd+bwd futile cycle is dropped
        assert res.pathways == [(1, 1, 1)]

    def test_reversible_allows_negative_flux(self):
        net = MetabolicNetwork(
            [
                Reaction("inA", {"Xext": -1, "A": 1}),
                Reaction("rev", {"A": -1, "B": 1}, reversible=True),
                Reaction("outA", {"A": -1, "Yext": 1}),
                Reaction("inB", {"Zext": -1, "B": 1}),
            ],
            external={"Xext", "Yext", "Zext"},
        )
        res = extreme_pathways(net)
        # one mode runs `rev` backwards: B -> A -> out
        flats = set(res.pathways)
        assert any(p[1] < 0 for p in flats)


class TestStress:
    def test_parallel_routes_count(self):
        """m parallel branches -> m extreme pathways."""
        reactions = [Reaction("in", {"Xext": -1, "A": 1}),
                     Reaction("out", {"B": -1, "Yext": 1})]
        for i in range(4):
            reactions.append(Reaction(f"b{i}", {"A": -1, "B": 1}))
        net = MetabolicNetwork(reactions, external={"Xext", "Yext"})
        res = extreme_pathways(net)
        assert len(res) == 4

    def test_ray_budget(self):
        reactions = [Reaction("in", {"Xext": -1, "A": 1}),
                     Reaction("out", {"B": -1, "Yext": 1})]
        for i in range(6):
            reactions.append(Reaction(f"b{i}", {"A": -1, "B": 1}))
        net = MetabolicNetwork(reactions, external={"Xext", "Yext"})
        with pytest.raises(SolverError, match="max_rays"):
            extreme_pathways(net, max_rays=2)

    def test_canonical_integer_normalisation(self):
        net = MetabolicNetwork(
            [
                Reaction("in", {"Xext": -1, "A": 2}),
                Reaction("out", {"A": -2, "Yext": 1}),
            ],
            external={"Xext", "Yext"},
        )
        res = extreme_pathways(net)
        assert res.pathways == [(1, 1)]
