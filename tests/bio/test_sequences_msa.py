"""Tests for sequence generation, MSA, and pathway alignment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bio.msa import (
    distance_matrix,
    neighbor_joining,
    progressive_alignment,
    sum_of_pairs,
)
from repro.bio.pathway_alignment import align_pathways, conserved_segments
from repro.bio.sequences import (
    DNA_ALPHABET,
    PROTEIN_ALPHABET,
    mutate,
    random_sequence,
    sequence_family,
)
from repro.errors import AlignmentError, ParameterError


class TestSequences:
    def test_random_sequence_alphabet(self):
        s = random_sequence(100, DNA_ALPHABET, seed=1)
        assert len(s) == 100
        assert set(s) <= set(DNA_ALPHABET)

    def test_protein_alphabet(self):
        s = random_sequence(200, PROTEIN_ALPHABET, seed=2)
        assert set(s) <= set(PROTEIN_ALPHABET)

    def test_deterministic(self):
        assert random_sequence(50, seed=3) == random_sequence(50, seed=3)

    def test_invalid_params(self):
        with pytest.raises(ParameterError):
            random_sequence(-1)
        with pytest.raises(ParameterError):
            random_sequence(5, "")

    def test_mutate_zero_rate_identity(self):
        s = random_sequence(60, seed=4)
        assert mutate(s, 0.0, 0.0, seed=5) == s

    def test_mutate_rate_roughly_respected(self):
        s = random_sequence(2000, seed=6)
        m = mutate(s, 0.2, 0.0, seed=7)
        diff = sum(1 for a, b in zip(s, m) if a != b) / len(s)
        assert 0.15 < diff < 0.25

    def test_mutate_invalid_rate(self):
        with pytest.raises(ParameterError):
            mutate("ACGT", 1.5)

    def test_family(self):
        anc, fam = sequence_family(50, 4, 0.1, 0.02, seed=8)
        assert len(fam) == 4
        assert len(anc) == 50
        assert all(abs(len(f) - 50) < 15 for f in fam)

    def test_family_needs_members(self):
        with pytest.raises(ParameterError):
            sequence_family(50, 0)


class TestDistanceMatrix:
    def test_shape_and_symmetry(self):
        seqs = ["ACGT", "ACGA", "TTTT"]
        d = distance_matrix(seqs)
        assert d.shape == (3, 3)
        assert np.allclose(d, d.T)
        assert np.allclose(np.diag(d), 0.0)

    def test_identical_sequences_distance_zero(self):
        d = distance_matrix(["ACGT", "ACGT"])
        assert d[0, 1] == 0.0

    def test_related_closer_than_unrelated(self):
        anc, fam = sequence_family(60, 2, 0.05, 0.0, seed=9)
        stranger = random_sequence(60, seed=999)
        d = distance_matrix([fam[0], fam[1], stranger])
        assert d[0, 1] < d[0, 2]
        assert d[0, 1] < d[1, 2]

    def test_parallel_matches_serial(self):
        seqs = [random_sequence(30, seed=s) for s in range(5)]
        assert np.allclose(
            distance_matrix(seqs, n_workers=1),
            distance_matrix(seqs, n_workers=2),
        )


class TestNeighborJoining:
    def test_two_leaves(self):
        tree = neighbor_joining(np.array([[0.0, 1.0], [1.0, 0.0]]))
        assert sorted(tree.leaves()) == [0, 1]

    def test_single_leaf(self):
        tree = neighbor_joining(np.zeros((1, 1)))
        assert tree.leaves() == [0]

    def test_covers_all_leaves(self):
        rng = np.random.default_rng(10)
        m = rng.random((6, 6))
        d = (m + m.T) / 2
        np.fill_diagonal(d, 0.0)
        tree = neighbor_joining(d)
        assert sorted(tree.leaves()) == list(range(6))

    def test_joins_closest_pair_first(self):
        # leaves 0,1 nearly identical; 2,3 far away
        d = np.array(
            [
                [0.0, 0.1, 1.0, 1.0],
                [0.1, 0.0, 1.0, 1.0],
                [1.0, 1.0, 0.0, 0.1],
                [1.0, 1.0, 0.1, 0.0],
            ]
        )
        tree = neighbor_joining(d)
        # the tree must keep {0,1} and {2,3} as sibling pairs
        def sibling_sets(node, out):
            if node.is_leaf:
                return
            if (node.left.is_leaf and node.right.is_leaf):
                out.append({node.left.index, node.right.index})
            sibling_sets(node.left, out)
            sibling_sets(node.right, out)
        pairs = []
        sibling_sets(tree, pairs)
        assert {0, 1} in pairs or {2, 3} in pairs

    def test_rejects_nonsquare(self):
        with pytest.raises(AlignmentError):
            neighbor_joining(np.zeros((2, 3)))

    def test_rejects_empty(self):
        with pytest.raises(AlignmentError):
            neighbor_joining(np.zeros((0, 0)))


class TestProgressiveAlignment:
    def test_empty_and_single(self):
        assert progressive_alignment([]) == []
        assert progressive_alignment(["ACGT"]) == ["ACGT"]

    def test_rows_reproduce_inputs(self):
        _, fam = sequence_family(40, 5, 0.1, 0.03, seed=11)
        msa = progressive_alignment(fam)
        assert len(msa) == 5
        lengths = {len(r) for r in msa}
        assert len(lengths) == 1
        for row, seq in zip(msa, fam):
            assert row.replace("-", "") == seq

    def test_identical_sequences_align_perfectly(self):
        msa = progressive_alignment(["ACGTACGT"] * 4)
        assert msa == ["ACGTACGT"] * 4

    def test_gapped_input_rejected(self):
        with pytest.raises(AlignmentError):
            progressive_alignment(["AC-T", "ACGT"])

    def test_sp_score_better_than_random_shuffle(self):
        """The guide tree must beat aligning in arbitrary padded form."""
        _, fam = sequence_family(30, 4, 0.08, 0.02, seed=12)
        msa = progressive_alignment(fam)
        width = max(len(s) for s in fam)
        naive = [s + "-" * (width - len(s)) for s in fam]
        assert sum_of_pairs(msa) >= sum_of_pairs(naive)


class TestSumOfPairs:
    def test_empty(self):
        assert sum_of_pairs([]) == 0.0

    def test_two_identical_rows(self):
        assert sum_of_pairs(["AC", "AC"]) == 2.0

    def test_gap_residue_penalty(self):
        assert sum_of_pairs(["A-", "AA"], gap_residue=-1.5) == -0.5

    def test_gap_gap_column_free(self):
        assert sum_of_pairs(["A-", "A-"]) == 1.0

    def test_ragged_rejected(self):
        with pytest.raises(AlignmentError):
            sum_of_pairs(["AB", "A"])


class TestPathwayAlignment:
    def test_identical_pathways(self):
        p = ["hxk", "pgi", "pfk"]
        al = align_pathways(p, p)
        assert al.score == 6.0
        assert al.pairs == [(x, x) for x in p]

    def test_gap_handling(self):
        al = align_pathways(["a", "b", "c"], ["a", "c"])
        assert None in al.aligned_b
        assert al.aligned_a == ("a", "b", "c")

    def test_custom_similarity(self):
        sim = lambda a, b: 5.0 if a[0] == b[0] else -5.0
        al = align_pathways(["abc"], ["axe"], similarity=sim)
        assert al.score == 5.0

    def test_positive_gap_rejected(self):
        with pytest.raises(AlignmentError):
            align_pathways(["a"], ["a"], gap=0.0)

    def test_empty_pathways(self):
        al = align_pathways([], [])
        assert al.score == 0.0
        assert len(al) == 0

    def test_conserved_segments(self):
        a = ["x", "m1", "m2", "m3", "y", "z"]
        b = ["w", "m1", "m2", "m3", "q", "z"]
        al = align_pathways(a, b)
        segs = conserved_segments(al, min_length=2)
        assert [("m1", "m1"), ("m2", "m2"), ("m3", "m3")] in segs

    def test_conserved_requires_identity_by_default(self):
        al = align_pathways(["a", "b"], ["a", "c"])
        assert conserved_segments(al, min_length=2) == []
        loose = conserved_segments(
            al, min_length=2, require_identity=False
        )
        assert len(loose) == 1
