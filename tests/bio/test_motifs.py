"""Tests for clique-based motif finding."""

from __future__ import annotations

import pytest

from repro.bio.motifs import (
    build_occurrence_graph,
    consensus,
    find_motif,
    hamming,
    plant_motif,
)
from repro.errors import ParameterError


class TestHamming:
    def test_basic(self):
        assert hamming("ACGT", "ACGA") == 1
        assert hamming("AAAA", "TTTT") == 4
        assert hamming("", "") == 0

    def test_length_mismatch(self):
        with pytest.raises(ParameterError):
            hamming("A", "AB")


class TestPlanting:
    def test_instance_shape(self):
        inst = plant_motif(5, 60, 8, d=1, seed=2)
        assert len(inst.sequences) == 5
        assert all(len(s) == 60 for s in inst.sequences)
        assert inst.l == 8

    def test_planted_copies_at_distance_d(self):
        inst = plant_motif(6, 50, 10, d=2, seed=3)
        for window in inst.planted_windows():
            assert hamming(window, inst.motif) == 2

    def test_deterministic(self):
        a = plant_motif(4, 40, 6, d=1, seed=7)
        b = plant_motif(4, 40, 6, d=1, seed=7)
        assert a.sequences == b.sequences
        assert a.positions == b.positions

    def test_invalid_params(self):
        with pytest.raises(ParameterError):
            plant_motif(3, 5, 10, d=1)
        with pytest.raises(ParameterError):
            plant_motif(3, 20, 5, d=6)


class TestOccurrenceGraph:
    def test_vertices_are_windows(self):
        g, labels = build_occurrence_graph(["ACGT", "ACGT"], 3, 0)
        assert g.n == 4  # 2 windows per sequence
        assert labels[0] == (0, 0)
        assert labels[-1] == (1, 1)

    def test_identical_windows_connected(self):
        g, labels = build_occurrence_graph(["ACG", "ACG"], 3, 0)
        assert g.has_edge(0, 1)

    def test_no_intra_sequence_edges(self):
        g, labels = build_occurrence_graph(["AAAA"], 3, 3)
        # both windows are in the same sequence: no edge allowed
        assert g.m == 0

    def test_distance_threshold(self):
        g, _ = build_occurrence_graph(["ACG", "AGG"], 3, 0)
        assert g.m == 0
        g, _ = build_occurrence_graph(["ACG", "AGG"], 3, 1)
        assert g.m == 1

    def test_invalid_length(self):
        with pytest.raises(ParameterError):
            build_occurrence_graph(["ACG"], 0, 1)


class TestConsensus:
    def test_majority(self):
        assert consensus(["ACG", "ACG", "ATG"]) == "ACG"

    def test_empty(self):
        assert consensus([]) == ""

    def test_ragged_rejected(self):
        with pytest.raises(ParameterError):
            consensus(["AC", "A"])


class TestFindMotif:
    def test_recovers_planted_motif(self):
        inst = plant_motif(
            n_sequences=5, seq_length=40, motif_length=8, d=1, seed=11
        )
        result = find_motif(inst.sequences, inst.l, inst.d)
        # one occurrence per sequence
        seqs_hit = {si for si, _ in result.occurrences}
        assert seqs_hit == set(range(5))
        # the recovered positions are the planted ones
        expected = sorted(enumerate(inst.positions))
        assert result.occurrences == expected
        # consensus within d of the true motif (majority vote repairs
        # most mutations)
        assert hamming(result.consensus, inst.motif) <= inst.d

    def test_exact_motif_no_mutations(self):
        inst = plant_motif(4, 30, 7, d=0, seed=5)
        result = find_motif(inst.sequences, 7, 0)
        assert result.consensus == inst.motif
        assert len(result.occurrences) == 4
