"""Tests for synthetic expression data and normalization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bio.expression import (
    ModuleSpec,
    impute_missing,
    inject_missing,
    log2_transform,
    quantile_normalize,
    synthetic_expression,
    zscore_normalize,
)
from repro.errors import ParameterError


class TestModuleSpec:
    def test_valid(self):
        ModuleSpec(5, 0.8)

    def test_invalid_size(self):
        with pytest.raises(ParameterError):
            ModuleSpec(0, 0.8)

    def test_invalid_rho(self):
        with pytest.raises(ParameterError):
            ModuleSpec(5, 0.0)
        with pytest.raises(ParameterError):
            ModuleSpec(5, 1.1)


class TestSynthetic:
    def test_shape(self):
        ds = synthetic_expression(50, 20, seed=1)
        assert ds.matrix.shape == (50, 20)
        assert ds.n_genes == 50
        assert ds.n_conditions == 20
        assert len(ds.gene_names) == 50
        assert len(ds.condition_names) == 20

    def test_deterministic(self):
        a = synthetic_expression(30, 10, [ModuleSpec(5)], seed=3)
        b = synthetic_expression(30, 10, [ModuleSpec(5)], seed=3)
        assert np.array_equal(a.matrix, b.matrix)
        assert a.modules == b.modules

    def test_modules_disjoint(self):
        ds = synthetic_expression(
            60, 20, [ModuleSpec(10), ModuleSpec(10), ModuleSpec(10)], seed=2
        )
        all_members = [v for m in ds.modules for v in m]
        assert len(all_members) == len(set(all_members)) == 30

    def test_module_members_correlate(self):
        ds = synthetic_expression(
            40, 60, [ModuleSpec(8, rho=0.95)], seed=4
        )
        m = ds.modules[0]
        corr = np.corrcoef(ds.matrix[m])
        off_diag = corr[np.triu_indices(8, k=1)]
        assert off_diag.mean() > 0.8

    def test_background_uncorrelated(self):
        ds = synthetic_expression(40, 200, seed=5)
        corr = np.corrcoef(ds.matrix)
        off = np.abs(corr[np.triu_indices(40, k=1)])
        assert off.mean() < 0.15

    def test_oversubscribed_modules_rejected(self):
        with pytest.raises(ParameterError):
            synthetic_expression(5, 10, [ModuleSpec(6)])

    def test_invalid_dims(self):
        with pytest.raises(ParameterError):
            synthetic_expression(-1, 5)
        with pytest.raises(ParameterError):
            synthetic_expression(5, 0)


class TestNormalization:
    def test_zscore_rows(self):
        m = np.array([[1.0, 2.0, 3.0], [10.0, 20.0, 30.0]])
        z = zscore_normalize(m, axis=1)
        assert np.allclose(z.mean(axis=1), 0)
        assert np.allclose(z.std(axis=1), 1)

    def test_zscore_constant_row_safe(self):
        m = np.array([[5.0, 5.0, 5.0]])
        z = zscore_normalize(m)
        assert np.allclose(z, 0)
        assert not np.isnan(z).any()

    def test_quantile_equalizes_distributions(self):
        rng = np.random.default_rng(0)
        m = np.column_stack(
            [rng.normal(0, 1, 200), rng.normal(5, 3, 200)]
        )
        q = quantile_normalize(m)
        assert np.allclose(
            np.sort(q[:, 0]), np.sort(q[:, 1])
        )

    def test_quantile_preserves_ranks(self):
        m = np.array([[3.0, 30.0], [1.0, 10.0], [2.0, 20.0]])
        q = quantile_normalize(m)
        assert np.array_equal(
            np.argsort(q[:, 0]), np.argsort(m[:, 0])
        )

    def test_quantile_requires_2d(self):
        with pytest.raises(ParameterError):
            quantile_normalize(np.zeros(5))

    def test_log2(self):
        m = np.array([[0.0, 1.0, 3.0]])
        out = log2_transform(m)
        assert np.allclose(out, [[0.0, 1.0, 2.0]])

    def test_log2_rejects_negative_domain(self):
        with pytest.raises(ParameterError):
            log2_transform(np.array([[-2.0]]))


class TestMissing:
    def test_inject_rate(self):
        m = np.zeros((100, 100))
        out = inject_missing(m, 0.25, seed=1)
        frac = np.isnan(out).mean()
        assert 0.2 < frac < 0.3

    def test_inject_invalid_rate(self):
        with pytest.raises(ParameterError):
            inject_missing(np.zeros((2, 2)), 1.0)

    def test_impute_row_means(self):
        m = np.array([[1.0, np.nan, 3.0]])
        out = impute_missing(m)
        assert out[0, 1] == pytest.approx(2.0)

    def test_impute_all_nan_row(self):
        m = np.array([[np.nan, np.nan]])
        out = impute_missing(m)
        assert np.allclose(out, 0.0)

    def test_impute_roundtrip_preserves_observed(self):
        rng = np.random.default_rng(2)
        m = rng.normal(size=(20, 10))
        holed = inject_missing(m, 0.1, seed=3)
        fixed = impute_missing(holed)
        mask = ~np.isnan(holed)
        assert np.allclose(fixed[mask], m[mask])
        assert not np.isnan(fixed).any()
