"""Tests for the expression-to-graph pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bio.coexpression import (
    coexpression_cliques,
    coexpression_pipeline,
    correlation_graph,
    threshold_for_density,
)
from repro.bio.expression import ModuleSpec, synthetic_expression
from repro.core.clique_enumerator import enumerate_maximal_cliques
from repro.engine import EnumerationConfig
from repro.errors import ParameterError


@pytest.fixture(scope="module")
def dataset():
    return synthetic_expression(
        80, 50, [ModuleSpec(10, 0.97), ModuleSpec(7, 0.95)], seed=9
    )


class TestCorrelationGraph:
    def test_simple_threshold(self):
        c = np.array([
            [1.0, 0.9, 0.1],
            [0.9, 1.0, -0.8],
            [0.1, -0.8, 1.0],
        ])
        g = correlation_graph(c, 0.5)
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 2)  # |−0.8| passes with absolute=True
        assert not g.has_edge(0, 2)

    def test_signed_mode(self):
        c = np.array([[1.0, -0.8], [-0.8, 1.0]])
        assert correlation_graph(c, 0.5, absolute=False).m == 0
        assert correlation_graph(c, 0.5, absolute=True).m == 1

    def test_diagonal_never_edges(self):
        c = np.eye(4)
        assert correlation_graph(c, 0.5).m == 0

    def test_asymmetric_rejected(self):
        c = np.array([[1.0, 0.2], [0.3, 1.0]])
        with pytest.raises(ParameterError):
            correlation_graph(c, 0.5)

    def test_non_square_rejected(self):
        with pytest.raises(ParameterError):
            correlation_graph(np.zeros((2, 3)), 0.5)


class TestThresholdForDensity:
    def test_hits_target(self):
        rng = np.random.default_rng(1)
        m = rng.normal(size=(60, 40))
        corr = np.corrcoef(m)
        t = threshold_for_density(corr, 0.05)
        g = correlation_graph(corr, t)
        assert g.density() == pytest.approx(0.05, abs=0.01)

    def test_invalid_density(self):
        with pytest.raises(ParameterError):
            threshold_for_density(np.eye(3), 0.0)

    def test_trivial_matrix(self):
        assert threshold_for_density(np.eye(1), 0.5) == 1.0


class TestPipeline:
    def test_planted_modules_become_cliques(self, dataset):
        res = coexpression_pipeline(dataset, threshold=0.8)
        found = enumerate_maximal_cliques(res.graph, k_min=5)
        found_sets = [set(c) for c in found.cliques]
        for module in dataset.modules:
            assert any(
                set(module) <= s for s in found_sets
            ), f"module {module} not recovered as a clique"

    def test_target_density_mode(self, dataset):
        res = coexpression_pipeline(dataset, target_density=0.03)
        assert res.graph.density() <= 0.08
        assert 0 < res.threshold < 1

    def test_exactly_one_threshold_arg(self, dataset):
        with pytest.raises(ParameterError):
            coexpression_pipeline(dataset)
        with pytest.raises(ParameterError):
            coexpression_pipeline(
                dataset, threshold=0.5, target_density=0.1
            )

    def test_method_validation(self, dataset):
        with pytest.raises(ParameterError):
            coexpression_pipeline(dataset, threshold=0.5, method="kendall")

    def test_pearson_mode(self, dataset):
        res = coexpression_pipeline(
            dataset, threshold=0.8, method="pearson"
        )
        assert res.method == "pearson"
        assert res.graph.n == dataset.n_genes


class TestCoexpressionCliques:
    def test_end_to_end_through_engine(self, dataset):
        pipeline, enum = coexpression_cliques(
            dataset,
            threshold=0.8,
            config=EnumerationConfig(backend="incore", k_min=5),
        )
        reference = enumerate_maximal_cliques(pipeline.graph, k_min=5)
        assert sorted(enum.cliques) == sorted(reference.cliques)
        assert enum.backend == "incore"

    def test_backend_is_interchangeable(self, dataset):
        _, incore = coexpression_cliques(
            dataset, threshold=0.8,
            config=EnumerationConfig(backend="incore", k_min=4),
        )
        _, ooc = coexpression_cliques(
            dataset, threshold=0.8,
            config=EnumerationConfig(backend="ooc", k_min=4),
        )
        assert sorted(incore.cliques) == sorted(ooc.cliques)
        assert ooc.io is not None and ooc.io.bytes_written > 0

    def test_default_config(self, dataset):
        _, enum = coexpression_cliques(dataset, threshold=0.8)
        assert enum.k_min == 3
        assert all(len(c) >= 3 for c in enum.cliques)


class TestSweepJobBatches:
    def test_sweep_matches_direct_pipeline(self, dataset):
        from repro.service import JobScheduler, JobStatus
        from repro.bio.coexpression import submit_coexpression_sweep

        thresholds = [0.9, 0.8]
        with JobScheduler(workers=2) as sched:
            jobs = submit_coexpression_sweep(
                sched, dataset, thresholds, sink="count"
            )
            sched.drain(60)
        assert [j.status for j in jobs] == [JobStatus.DONE] * 2
        assert [j.spec.label for j in jobs] == [
            "coexpression@0.9", "coexpression@0.8"
        ]
        for threshold, job in zip(thresholds, jobs):
            _, direct = coexpression_cliques(dataset, threshold=threshold)
            assert job.sink_summary["cliques"] == len(direct.cliques)

    def test_repeated_threshold_hits_cache(self, dataset):
        from repro.service import JobScheduler
        from repro.bio.coexpression import submit_coexpression_sweep

        with JobScheduler(workers=1) as sched:
            jobs = submit_coexpression_sweep(
                sched, dataset, [0.8, 0.8], sink="collect"
            )
            sched.drain(60)
        assert not jobs[0].cache_hit
        assert jobs[1].cache_hit

    def test_empty_sweep_rejected(self, dataset):
        from repro.service import JobScheduler
        from repro.bio.coexpression import submit_coexpression_sweep

        with JobScheduler(workers=1) as sched:
            with pytest.raises(ParameterError, match="threshold"):
                submit_coexpression_sweep(sched, dataset, [])
