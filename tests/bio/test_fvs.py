"""Tests for feedback vertex set."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bio.fvs import (
    feedback_vertex_set_decision,
    is_acyclic,
    is_feedback_vertex_set,
    minimum_feedback_vertex_set,
    shortest_cycle,
)
from repro.core.generators import (
    barbell_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
    star_graph,
)
from repro.core.graph import Graph
from repro.errors import ParameterError


class TestAcyclicity:
    def test_forest(self):
        assert is_acyclic(path_graph(6))
        assert is_acyclic(star_graph(5))
        assert is_acyclic(Graph(4))

    def test_cycles(self):
        assert not is_acyclic(cycle_graph(3))
        assert not is_acyclic(complete_graph(4))


class TestShortestCycle:
    def test_none_for_forest(self):
        assert shortest_cycle(path_graph(5)) is None

    def test_triangle_found(self):
        g = complete_graph(4)
        c = shortest_cycle(g)
        assert len(c) == 3
        assert g.is_clique(c)

    def test_girth_of_cycle_graph(self):
        c = shortest_cycle(cycle_graph(7))
        assert len(c) == 7

    def test_cycle_is_closed_walk(self):
        g = erdos_renyi(20, 0.2, seed=4)
        c = shortest_cycle(g)
        if c is not None:
            assert len(c) == len(set(c))
            for a, b in zip(c, c[1:]):
                assert g.has_edge(a, b)
            assert g.has_edge(c[-1], c[0])


class TestDecision:
    def test_forest_needs_zero(self):
        assert feedback_vertex_set_decision(path_graph(5), 0) == []

    def test_cycle_needs_one(self):
        assert feedback_vertex_set_decision(cycle_graph(5), 0) is None
        sol = feedback_vertex_set_decision(cycle_graph(5), 1)
        assert sol is not None and len(sol) == 1

    def test_negative_budget(self):
        with pytest.raises(ParameterError):
            feedback_vertex_set_decision(cycle_graph(3), -1)

    def test_k4_needs_two(self):
        assert feedback_vertex_set_decision(complete_graph(4), 1) is None
        sol = feedback_vertex_set_decision(complete_graph(4), 2)
        assert sol is not None and len(sol) == 2


class TestMinimum:
    def test_known_sizes(self):
        assert minimum_feedback_vertex_set(path_graph(5)) == []
        assert len(minimum_feedback_vertex_set(cycle_graph(6))) == 1
        assert len(minimum_feedback_vertex_set(complete_graph(5))) == 3
        assert len(minimum_feedback_vertex_set(barbell_graph(3))) == 2

    def test_two_disjoint_cycles(self):
        g = Graph.from_edges(
            6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]
        )
        assert len(minimum_feedback_vertex_set(g)) == 2

    def test_solution_is_valid(self):
        g = erdos_renyi(16, 0.25, seed=8)
        sol = minimum_feedback_vertex_set(g)
        assert is_feedback_vertex_set(g, sol)

    def test_solution_is_minimal(self):
        g = erdos_renyi(14, 0.3, seed=2)
        sol = minimum_feedback_vertex_set(g)
        for v in sol:
            rest = [u for u in sol if u != v]
            assert not is_feedback_vertex_set(g, rest)


class TestValidator:
    def test_removing_everything_is_acyclic(self, k5):
        assert is_feedback_vertex_set(k5, list(range(5)))

    def test_empty_set_on_cycle(self):
        assert not is_feedback_vertex_set(cycle_graph(4), [])


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=1, max_value=12),
    st.floats(min_value=0.0, max_value=0.5),
    st.integers(min_value=0, max_value=300),
)
def test_fvs_property(n, p, seed):
    g = erdos_renyi(n, p, seed=seed)
    sol = minimum_feedback_vertex_set(g)
    assert is_feedback_vertex_set(g, sol)
    # cyclomatic lower bound: need at least m - n + components... use the
    # weaker sanity bound: solution no larger than n - 2 for any graph
    # with a cycle, and empty iff acyclic
    assert (sol == []) == is_acyclic(g)
