"""Tests for pairwise sequence alignment."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bio.pairwise import (
    needleman_wunsch,
    percent_identity,
    smith_waterman,
)
from repro.errors import AlignmentError

DNA = st.text(alphabet="ACGT", min_size=0, max_size=30)


class TestIdentity:
    def test_full_match(self):
        assert percent_identity("ACGT", "ACGT") == 1.0

    def test_no_match(self):
        assert percent_identity("AAAA", "TTTT") == 0.0

    def test_gaps_do_not_count_as_match(self):
        assert percent_identity("A-", "A-") == 0.5

    def test_length_mismatch(self):
        with pytest.raises(AlignmentError):
            percent_identity("A", "AB")

    def test_empty(self):
        assert percent_identity("", "") == 1.0


class TestNeedlemanWunsch:
    def test_identical(self):
        r = needleman_wunsch("ACGT", "ACGT")
        assert r.score == 4.0
        assert r.aligned_a == "ACGT"
        assert r.identity == 1.0

    def test_empty_vs_seq(self):
        r = needleman_wunsch("", "ACG", gap=-2.0)
        assert r.score == -6.0
        assert r.aligned_a == "---"
        assert r.aligned_b == "ACG"

    def test_both_empty(self):
        r = needleman_wunsch("", "")
        assert r.score == 0.0
        assert len(r) == 0

    def test_single_substitution(self):
        r = needleman_wunsch("ACGT", "AGGT", match=1, mismatch=-1, gap=-2)
        assert r.score == 2.0
        assert len(r.aligned_a) == 4

    def test_gap_placement(self):
        r = needleman_wunsch("ACGT", "AGT", match=1, mismatch=-1, gap=-1)
        assert r.score == 2.0
        assert r.aligned_b.count("-") == 1

    def test_alignment_columns_consistent(self):
        r = needleman_wunsch("GATTACA", "GCATGCU")
        assert len(r.aligned_a) == len(r.aligned_b)
        assert r.aligned_a.replace("-", "") == "GATTACA"
        assert r.aligned_b.replace("-", "") == "GCATGCU"

    def test_positive_gap_rejected(self):
        with pytest.raises(AlignmentError):
            needleman_wunsch("A", "A", gap=1.0)

    def test_symmetric_score(self):
        a, b = "ACCGGTT", "AGGTCT"
        assert needleman_wunsch(a, b).score == needleman_wunsch(b, a).score


class TestSmithWaterman:
    def test_exact_substring(self):
        r = smith_waterman("AAACCGTTT", "CCGT", match=2)
        assert r.aligned_a == "CCGT"
        assert r.score == 8.0

    def test_no_common_content(self):
        r = smith_waterman("AAAA", "TTTT")
        assert r.score <= 2.0  # at best a spurious 1-char hit scores match

    def test_empty_inputs(self):
        r = smith_waterman("", "ACGT")
        assert r.score == 0.0
        assert r.aligned_a == ""

    def test_score_never_negative(self):
        r = smith_waterman("ACG", "TTT")
        assert r.score >= 0.0

    def test_local_beats_global_on_flanked_motif(self):
        a = "TTTTTTCOREGGGGGG".replace("O", "A")  # CARE motif inside junk
        b = "CARE"
        local = smith_waterman(a, b)
        glob = needleman_wunsch(a, b)
        assert local.score > glob.score

    def test_positive_gap_rejected(self):
        with pytest.raises(AlignmentError):
            smith_waterman("A", "A", gap=0.5)


@settings(max_examples=40, deadline=None)
@given(DNA, DNA)
def test_nw_properties(a, b):
    r = needleman_wunsch(a, b)
    # gapped strings reproduce the inputs
    assert r.aligned_a.replace("-", "") == a
    assert r.aligned_b.replace("-", "") == b
    assert len(r.aligned_a) == len(r.aligned_b)
    # no column aligns two gaps
    for x, y in zip(r.aligned_a, r.aligned_b):
        assert not (x == "-" and y == "-")


@settings(max_examples=40, deadline=None)
@given(DNA)
def test_nw_self_alignment_perfect(a):
    r = needleman_wunsch(a, a)
    assert r.score == float(len(a))
    assert r.aligned_a == a


@settings(max_examples=30, deadline=None)
@given(DNA, DNA)
def test_sw_within_global_bounds(a, b):
    local = smith_waterman(a, b, match=1.0, mismatch=-1.0, gap=-2.0)
    assert local.score >= 0.0
    assert local.score <= min(len(a), len(b)) * 1.0 + 1e-9
