"""Tests for character compatibility and perfect phylogeny."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bio.phylo_compat import (
    build_perfect_phylogeny,
    compatibility_graph,
    four_gamete_compatible,
    largest_compatible_set,
)
from repro.errors import ParameterError, SolverError


class TestFourGamete:
    def test_compatible_nested(self):
        a = np.array([1, 1, 0, 0])
        b = np.array([1, 0, 0, 0])  # b's taxa nested in a's
        assert four_gamete_compatible(a, b)

    def test_compatible_disjoint(self):
        a = np.array([1, 1, 0, 0])
        b = np.array([0, 0, 1, 1])
        assert four_gamete_compatible(a, b)

    def test_incompatible_all_four(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 1, 0, 1])
        assert not four_gamete_compatible(a, b)

    def test_shape_mismatch(self):
        with pytest.raises(ParameterError):
            four_gamete_compatible(np.array([0, 1]), np.array([0, 1, 0]))


class TestCompatibilityGraph:
    def test_structure(self):
        # chars: c0={t0,t1}, c1={t0}, c2 conflicts with c0
        m = np.array(
            [
                [1, 1, 0],
                [1, 0, 1],
                [0, 0, 1],
                [0, 0, 0],
            ]
        )
        g = compatibility_graph(m)
        assert g.has_edge(0, 1)      # nested
        assert not g.has_edge(0, 2)  # all four gametes
        assert g.has_edge(1, 2)      # disjoint

    def test_non_binary_rejected(self):
        with pytest.raises(ParameterError):
            compatibility_graph(np.array([[0, 2]]))

    def test_non_2d_rejected(self):
        with pytest.raises(ParameterError):
            compatibility_graph(np.array([0, 1]))


class TestLargestCompatible:
    def test_all_compatible(self):
        # laminar family: {0,1,2,3} > {0,1} > {0}
        m = np.array(
            [
                [1, 1, 1],
                [1, 1, 0],
                [1, 0, 0],
                [1, 0, 0],
            ]
        )
        assert largest_compatible_set(m) == [0, 1, 2]

    def test_conflicting_pair(self):
        m = np.array(
            [
                [1, 0],
                [1, 1],
                [0, 1],
                [0, 0],
            ]
        )
        # compatible? patterns: (1,0),(1,1),(0,1),(0,0) = all four -> no
        assert len(largest_compatible_set(m)) == 1

    def test_empty_matrix(self):
        assert largest_compatible_set(np.zeros((3, 0))) == []

    def test_clique_is_jointly_realisable(self):
        """Pairwise-compatible sets must admit a perfect phylogeny."""
        rng = np.random.default_rng(9)
        m = (rng.random((8, 10)) < 0.4).astype(int)
        best = largest_compatible_set(m)
        tree = build_perfect_phylogeny(m, best)  # must not raise
        assert sorted(tree.all_taxa()) == list(range(8))


class TestPerfectPhylogeny:
    def test_simple_tree_structure(self):
        m = np.array(
            [
                [1, 1, 0],
                [1, 0, 0],
                [0, 0, 1],
            ]
        )
        tree = build_perfect_phylogeny(m)
        assert sorted(tree.all_taxa()) == [0, 1, 2]
        chars_in_tree = set()

        def collect(node):
            if node.character >= 0:
                chars_in_tree.add(node.character)
            for ch in node.children:
                collect(ch)

        collect(tree)
        assert chars_in_tree == {0, 1, 2}

    def test_incompatible_raises(self):
        m = np.array(
            [
                [1, 0],
                [1, 1],
                [0, 1],
                [0, 0],
            ]
        )
        with pytest.raises(SolverError):
            build_perfect_phylogeny(m)

    def test_character_taxa_form_subtrees(self):
        """Every character's (recoded) taxa set is exactly one subtree."""
        m = np.array(
            [
                [1, 1, 0, 0],
                [1, 1, 0, 0],
                [1, 0, 1, 0],
                [0, 0, 1, 1],
                [0, 0, 0, 1],
            ]
        )
        chars = largest_compatible_set(m)
        tree = build_perfect_phylogeny(m, chars)

        def find(node, c):
            if node.character == c:
                return node
            for ch in node.children:
                got = find(ch, c)
                if got is not None:
                    return got
            return None

        for c in chars:
            node = find(tree, c)
            col = m[:, c]
            if node is None:
                # characters whose recoded taxa set is empty need no edge
                recoded = (1 - col) if col[0] == 1 else col
                assert not recoded.any()
                continue
            expected = set(
                np.flatnonzero(
                    (1 - col) if node.flipped else col
                ).tolist()
            )
            assert set(node.all_taxa()) == expected

    def test_bad_character_index(self):
        with pytest.raises(ParameterError):
            build_perfect_phylogeny(np.array([[1]]), [5])
