"""Tests for metabolic network models."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.bio.stoichiometry import MetabolicNetwork, Reaction, example_network
from repro.errors import ParameterError


class TestReaction:
    def test_basic(self):
        r = Reaction("v", {"A": -1, "B": 2})
        assert r.stoich["B"] == Fraction(2)

    def test_zero_coefficients_dropped(self):
        r = Reaction("v", {"A": -1, "B": 0, "C": 1})
        assert "B" not in r.stoich

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            Reaction("v", {})
        with pytest.raises(ParameterError):
            Reaction("v", {"A": 0})

    def test_fraction_coefficients(self):
        r = Reaction("v", {"A": Fraction(1, 2)})
        assert r.stoich["A"] == Fraction(1, 2)


class TestNetwork:
    def test_example_shape(self):
        net = example_network()
        assert net.n_reactions == 6
        assert set(net.internal_metabolites()) == {"A", "B", "C"}

    def test_duplicate_names_rejected(self):
        r = Reaction("v", {"A": -1, "B": 1})
        with pytest.raises(ParameterError):
            MetabolicNetwork([r, r])

    def test_unknown_external_rejected(self):
        r = Reaction("v", {"A": -1, "B": 1})
        with pytest.raises(ParameterError):
            MetabolicNetwork([r], external={"Z"})

    def test_matrix_shape_and_values(self):
        net = example_network()
        s = net.stoichiometric_matrix()
        assert s.shape == (3, 6)
        # metabolite A: produced by uptake, consumed by v1, v2
        a_row = s[net.internal_metabolites().index("A")]
        assert a_row.tolist() == [1, -1, -1, 0, 0, 0]

    def test_full_matrix_includes_external(self):
        net = example_network()
        s = net.stoichiometric_matrix(internal_only=False)
        assert s.shape == (net.n_metabolites, 6)

    def test_exact_matrix_matches_float(self):
        net = example_network()
        exact = net.exact_matrix()
        flt = net.stoichiometric_matrix()
        for i, row in enumerate(exact):
            for j, val in enumerate(row):
                assert float(val) == flt[i, j]

    def test_flux_is_steady(self):
        net = example_network()
        # uptake -> v1 -> drainB is a balanced route
        assert net.flux_is_steady([1, 1, 0, 0, 1, 0])
        assert not net.flux_is_steady([1, 0, 0, 0, 0, 0])

    def test_flux_shape_checked(self):
        net = example_network()
        with pytest.raises(ParameterError):
            net.flux_is_steady([1, 2])

    def test_split_reversible(self):
        net = MetabolicNetwork(
            [
                Reaction("r1", {"A": -1, "B": 1}, reversible=True),
                Reaction("r2", {"B": -1, "C": 1}),
            ],
            external={"A", "C"},
        )
        split, origin = net.split_reversible()
        assert split.n_reactions == 3
        assert origin == [0, -1, 1]
        names = [r.name for r in split.reactions]
        assert names == ["r1_fwd", "r1_bwd", "r2"]
        # backward half negates stoichiometry
        assert split.reactions[1].stoich["A"] == Fraction(1)

    def test_repr(self):
        assert "6 reactions" in repr(example_network())
