"""Tests for PPI noise simulation and Boolean cleaning."""

from __future__ import annotations

import pytest

from repro.bio.ppi import (
    clean_by_voting,
    interaction_modules,
    observe_with_noise,
    score_recovery,
    simulate_replicates,
)
from repro.core.clique_enumerator import enumerate_maximal_cliques
from repro.core.generators import erdos_renyi, planted_partition
from repro.core.graph import Graph
from repro.engine import EnumerationConfig
from repro.errors import ParameterError


@pytest.fixture(scope="module")
def truth():
    return erdos_renyi(60, 0.1, seed=42)


class TestObservation:
    def test_no_noise_is_identity(self, truth):
        obs = observe_with_noise(truth, 0.0, 0.0, seed=1)
        assert obs == truth

    def test_full_fn_erases(self, truth):
        obs = observe_with_noise(truth, 0.0, 1.0, seed=1)
        assert obs.m == 0

    def test_full_fp_completes(self, truth):
        obs = observe_with_noise(truth, 1.0, 0.0, seed=1)
        assert obs.m == truth.n * (truth.n - 1) // 2

    def test_rates_validated(self, truth):
        with pytest.raises(ParameterError):
            observe_with_noise(truth, -0.1, 0.0)
        with pytest.raises(ParameterError):
            observe_with_noise(truth, 0.0, 1.5)

    def test_deterministic(self, truth):
        a = observe_with_noise(truth, 0.05, 0.2, seed=7)
        b = observe_with_noise(truth, 0.05, 0.2, seed=7)
        assert a == b

    def test_fn_rate_approximate(self, truth):
        obs = observe_with_noise(truth, 0.0, 0.3, seed=3)
        kept = obs.m / truth.m
        assert 0.55 < kept < 0.85


class TestReplicates:
    def test_count_and_independence(self, truth):
        reps = simulate_replicates(truth, 4, 0.01, 0.2, seed=5)
        assert len(reps) == 4
        assert reps[0] != reps[1]

    def test_at_least_one(self, truth):
        with pytest.raises(ParameterError):
            simulate_replicates(truth, 0, 0.0, 0.0)


class TestCleaning:
    def test_voting_improves_precision(self, truth):
        reps = simulate_replicates(truth, 5, fp_rate=0.02, fn_rate=0.2,
                                   seed=9)
        single = score_recovery(truth, reps[0])
        voted = score_recovery(truth, clean_by_voting(reps, 3))
        assert voted.precision >= single.precision
        assert voted.f1 > 0.8

    def test_strict_vote_trades_recall(self, truth):
        reps = simulate_replicates(truth, 5, fp_rate=0.02, fn_rate=0.2,
                                   seed=11)
        loose = score_recovery(truth, clean_by_voting(reps, 1))
        strict = score_recovery(truth, clean_by_voting(reps, 5))
        assert strict.precision >= loose.precision
        assert strict.recall <= loose.recall


class TestScore:
    def test_perfect(self, truth):
        s = score_recovery(truth, truth)
        assert s.precision == 1.0
        assert s.recall == 1.0
        assert s.f1 == 1.0

    def test_empty_prediction(self, truth):
        s = score_recovery(truth, Graph(truth.n))
        assert s.precision == 1.0  # vacuous
        assert s.recall == 0.0
        assert s.f1 == 0.0

    def test_counts(self):
        t = Graph.from_edges(4, [(0, 1), (1, 2)])
        p = Graph.from_edges(4, [(0, 1), (2, 3)])
        s = score_recovery(t, p)
        assert (s.true_positives, s.false_positives, s.false_negatives) == (
            1, 1, 1,
        )

    def test_size_mismatch(self, truth):
        with pytest.raises(ParameterError):
            score_recovery(truth, Graph(truth.n + 1))


class TestInteractionModules:
    def test_matches_manual_two_steps(self):
        truth, _ = planted_partition(
            80, [7, 6, 5], p_in=0.9, p_out=0.02, seed=21
        )
        reps = simulate_replicates(truth, 5, 0.01, 0.15, seed=5)
        cleaned, enum = interaction_modules(
            reps, 3, config=EnumerationConfig(k_min=4)
        )
        assert cleaned == clean_by_voting(reps, 3)
        reference = enumerate_maximal_cliques(cleaned, k_min=4)
        assert sorted(enum.cliques) == sorted(reference.cliques)

    def test_default_config_and_backend_swap(self, truth):
        reps = simulate_replicates(truth, 3, 0.02, 0.1, seed=8)
        _, incore = interaction_modules(reps, 2)
        _, mp = interaction_modules(
            reps, 2,
            config=EnumerationConfig(
                backend="multiprocess", k_min=3, jobs=2
            ),
        )
        assert incore.k_min == 3
        assert sorted(incore.cliques) == sorted(mp.cliques)
