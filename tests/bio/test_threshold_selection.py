"""Tests for maximum-clique-guided threshold selection."""

from __future__ import annotations

import pytest

from repro.bio.correlation import spearman_correlation
from repro.bio.expression import ModuleSpec, synthetic_expression
from repro.bio.threshold_selection import (
    SweepPoint,
    select_threshold,
    threshold_sweep,
)
from repro.errors import ParameterError


@pytest.fixture(scope="module")
def corr():
    ds = synthetic_expression(
        100, 50, [ModuleSpec(10, 0.95), ModuleSpec(7, 0.93)], seed=21
    )
    return spearman_correlation(ds.matrix)


class TestSweep:
    def test_descending_thresholds(self, corr):
        pts = threshold_sweep(corr, [0.5, 0.9, 0.7])
        assert [p.threshold for p in pts] == [0.9, 0.7, 0.5]

    def test_monotone_edges(self, corr):
        pts = threshold_sweep(corr)
        edges = [p.n_edges for p in pts]
        assert edges == sorted(edges)  # looser threshold, more edges

    def test_monotone_clique_size(self, corr):
        pts = threshold_sweep(corr)
        cliques = [p.max_clique for p in pts]
        assert cliques == sorted(cliques)

    def test_module_visible_at_strict_threshold(self, corr):
        pts = threshold_sweep(corr, [0.85])
        # the planted 10-module should already form a large clique
        assert pts[0].max_clique >= 8

    def test_empty_thresholds_rejected(self, corr):
        with pytest.raises(ParameterError):
            threshold_sweep(corr, [])


class TestSelect:
    def _pt(self, t, mc):
        return SweepPoint(
            threshold=t, n_edges=0, density=0.0, max_clique=mc
        )

    def test_picks_before_inflection(self):
        pts = [
            self._pt(0.9, 9),
            self._pt(0.8, 10),
            self._pt(0.7, 10),
            self._pt(0.6, 40),  # noise explosion
        ]
        chosen = select_threshold(pts)
        assert chosen.threshold == 0.7

    def test_no_inflection_returns_loosest(self):
        pts = [self._pt(0.9, 5), self._pt(0.8, 6), self._pt(0.7, 7)]
        assert select_threshold(pts).threshold == 0.7

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            select_threshold([])

    def test_factor_validated(self):
        with pytest.raises(ParameterError):
            select_threshold([self._pt(0.9, 3)], inflection_factor=1.0)

    def test_on_real_sweep(self, corr):
        pts = threshold_sweep(corr, [0.9, 0.8, 0.7, 0.6, 0.5, 0.4])
        chosen = select_threshold(pts)
        # the chosen threshold keeps the planted module's clique size
        # (~10) rather than the noise blow-up
        assert chosen.max_clique <= 25
        assert chosen.threshold >= 0.4
