"""Tests for correlation matrices — cross-checked against scipy."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.stats

from repro.bio.correlation import (
    pearson_correlation,
    rank_rows,
    spearman_correlation,
)
from repro.errors import ParameterError


@pytest.fixture
def data():
    rng = np.random.default_rng(7)
    return rng.normal(size=(12, 30))


class TestPearson:
    def test_matches_numpy_corrcoef(self, data):
        ours = pearson_correlation(data)
        ref = np.corrcoef(data)
        assert np.allclose(ours, ref, atol=1e-10)

    def test_diagonal_ones(self, data):
        assert np.allclose(np.diag(pearson_correlation(data)), 1.0)

    def test_symmetric(self, data):
        c = pearson_correlation(data)
        assert np.allclose(c, c.T)

    def test_range(self, data):
        c = pearson_correlation(data)
        assert (c <= 1.0).all() and (c >= -1.0).all()

    def test_constant_row_is_zero_not_nan(self):
        m = np.vstack([np.ones(10), np.arange(10, dtype=float)])
        c = pearson_correlation(m)
        assert not np.isnan(c).any()
        assert c[0, 1] == 0.0
        assert c[0, 0] == 1.0

    def test_perfect_correlation(self):
        x = np.arange(10, dtype=float)
        m = np.vstack([x, 2 * x + 3, -x])
        c = pearson_correlation(m)
        assert c[0, 1] == pytest.approx(1.0)
        assert c[0, 2] == pytest.approx(-1.0)

    def test_nan_rejected(self):
        m = np.array([[1.0, np.nan], [0.0, 1.0]])
        with pytest.raises(ParameterError):
            pearson_correlation(m)

    def test_too_few_conditions(self):
        with pytest.raises(ParameterError):
            pearson_correlation(np.zeros((3, 1)))

    def test_non_2d(self):
        with pytest.raises(ParameterError):
            pearson_correlation(np.zeros(5))


class TestRanks:
    def test_simple_ranks(self):
        r = rank_rows(np.array([[30.0, 10.0, 20.0]]))
        assert r.tolist() == [[3.0, 1.0, 2.0]]

    def test_midranks_for_ties(self):
        r = rank_rows(np.array([[5.0, 5.0, 1.0]]))
        assert r.tolist() == [[2.5, 2.5, 1.0]]

    def test_matches_scipy_rankdata(self):
        rng = np.random.default_rng(3)
        m = rng.integers(0, 5, size=(6, 15)).astype(float)
        ours = rank_rows(m)
        for i in range(6):
            ref = scipy.stats.rankdata(m[i])
            assert np.allclose(ours[i], ref), f"row {i}"


class TestSpearman:
    def test_matches_scipy(self, data):
        ours = spearman_correlation(data)
        ref, _ = scipy.stats.spearmanr(data, axis=1)
        assert np.allclose(ours, ref, atol=1e-10)

    def test_matches_scipy_with_ties(self):
        rng = np.random.default_rng(5)
        m = rng.integers(0, 4, size=(8, 25)).astype(float)
        ours = spearman_correlation(m)
        ref, _ = scipy.stats.spearmanr(m, axis=1)
        assert np.allclose(ours, ref, atol=1e-10)

    def test_monotone_transform_invariance(self, data):
        """Spearman is invariant to monotone transforms of rows."""
        a = spearman_correlation(data)
        b = spearman_correlation(np.exp(data))
        assert np.allclose(a, b, atol=1e-10)
