"""Package-level smoke tests: public API surface and docstrings."""

from __future__ import annotations

import importlib

import pytest

import repro


PUBLIC_MODULES = [
    "repro.core.bitset",
    "repro.core.compressed",
    "repro.core.graph",
    "repro.core.graph_io",
    "repro.core.graph_ops",
    "repro.core.generators",
    "repro.core.degeneracy",
    "repro.core.bron_kerbosch",
    "repro.core.kclique",
    "repro.core.kose",
    "repro.core.sublist",
    "repro.core.clique_enumerator",
    "repro.core.maximum_clique",
    "repro.core.vertex_cover",
    "repro.core.paraclique",
    "repro.core.memory_model",
    "repro.core.counters",
    "repro.core.stats",
    "repro.core.out_of_core",
    "repro.core.decomposition",
    "repro.engine",
    "repro.engine.api",
    "repro.engine.backends",
    "repro.engine.config",
    "repro.engine.level_loop",
    "repro.engine.level_store",
    "repro.engine.registry",
    "repro.parallel.machine",
    "repro.parallel.load_balancer",
    "repro.parallel.parallel_enumerator",
    "repro.parallel.mp_backend",
    "repro.parallel.metrics",
    "repro.bio.expression",
    "repro.bio.correlation",
    "repro.bio.coexpression",
    "repro.bio.stoichiometry",
    "repro.bio.extreme_pathways",
    "repro.bio.ppi",
    "repro.bio.pathway_alignment",
    "repro.bio.fvs",
    "repro.bio.sequences",
    "repro.bio.pairwise",
    "repro.bio.msa",
    "repro.bio.motifs",
    "repro.bio.phylo_compat",
    "repro.bio.threshold_selection",
    "repro.experiments.workloads",
    "repro.experiments.reporting",
    "repro.experiments.calibration",
    "repro.experiments.table1",
    "repro.experiments.figure5",
    "repro.experiments.figure6",
    "repro.experiments.figure7",
    "repro.experiments.figure8",
    "repro.experiments.figure9",
    "repro.experiments.maxclique_support",
    "repro.experiments.runner",
    "repro.experiments.ablations",
    "repro.cli",
]


def test_version():
    assert repro.__version__ == "1.0.0"


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_module_importable_and_documented(name):
    mod = importlib.import_module(name)
    assert mod.__doc__, f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_all_exports_exist(name):
    mod = importlib.import_module(name)
    for sym in getattr(mod, "__all__", []):
        assert hasattr(mod, sym), f"{name}.__all__ lists missing {sym}"


def test_top_level_quickstart():
    """The README quickstart must work verbatim."""
    from repro import Graph, enumerate_maximal_cliques

    g = Graph.from_edges(5, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)])
    assert sorted(enumerate_maximal_cliques(g).cliques) == [
        (0, 1, 2), (2, 3), (3, 4),
    ]


def test_exception_hierarchy():
    assert issubclass(repro.GraphError, repro.ReproError)
    assert issubclass(repro.BitSetError, repro.ReproError)
    assert issubclass(repro.BudgetExceeded, repro.ReproError)
    assert issubclass(repro.ParseError, repro.ReproError)


def test_public_functions_have_docstrings():
    import inspect

    for name in PUBLIC_MODULES:
        mod = importlib.import_module(name)
        for sym in getattr(mod, "__all__", []):
            obj = getattr(mod, sym)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                assert obj.__doc__, f"{name}.{sym} lacks a docstring"
