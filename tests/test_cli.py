"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core import graph_io
from repro.core.generators import barbell_graph
from repro.engine import available_backends


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "g.json"
    graph_io.write_json(barbell_graph(3), path)
    return str(path)


class TestEnumerate:
    def test_lists_cliques(self, graph_file, capsys):
        assert main(["enumerate", graph_file]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert "0 1 2" in out
        assert "3 4 5" in out
        assert "2 3" in out

    def test_count_mode(self, graph_file, capsys):
        assert main(["enumerate", graph_file, "--count"]) == 0
        out = capsys.readouterr().out
        assert "size 2: 1" in out
        assert "size 3: 2" in out
        assert "total: 3" in out

    def test_k_min_filter(self, graph_file, capsys):
        assert main(["enumerate", graph_file, "--k-min", "3"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert out == ["0 1 2", "3 4 5"]


class TestEnumerateBackends:
    @pytest.mark.parametrize("backend", available_backends())
    def test_every_backend_counts_identically(
        self, backend, graph_file, capsys
    ):
        argv = ["enumerate", graph_file, "--backend", backend, "--count"]
        if backend == "multiprocess":
            argv += ["--jobs", "2"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "size 3: 2" in out
        assert "total: 3" in out

    def test_unknown_backend_is_argparse_error(self, graph_file, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["enumerate", graph_file, "--backend", "warpdrive"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_jobs_must_be_positive(self, graph_file, capsys):
        rc = main(
            ["enumerate", graph_file, "--backend", "multiprocess",
             "--jobs", "0"]
        )
        assert rc == 1
        assert "jobs" in capsys.readouterr().err

    def test_jobs_rejected_on_sequential_backend(self, graph_file, capsys):
        rc = main(
            ["enumerate", graph_file, "--backend", "incore", "--jobs", "4"]
        )
        assert rc == 1
        assert "sequential" in capsys.readouterr().err


class TestEngines:
    def test_lists_all_registered_backends(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        for name in available_backends():
            assert name in out
        assert "storage" in out


class TestMaxClique:
    def test_reports_size_and_members(self, graph_file, capsys):
        assert main(["maxclique", graph_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("size 3:")


class TestStats:
    def test_summary_fields(self, graph_file, capsys):
        assert main(["stats", graph_file]) == 0
        out = capsys.readouterr().out
        assert "vertices:            6" in out
        assert "edges:               7" in out
        assert "triangles:           2" in out


class TestConvert:
    def test_json_to_dimacs(self, graph_file, tmp_path, capsys):
        out_path = tmp_path / "g.dimacs"
        assert main(["convert", graph_file, str(out_path)]) == 0
        g = graph_io.read_dimacs(out_path)
        assert g.n == 6
        assert g.m == 7


class TestErrors:
    def test_missing_file(self, capsys):
        assert main(["stats", "/nonexistent/g.json"]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_format(self, tmp_path, capsys):
        bad = tmp_path / "g.xyz"
        bad.write_text("junk")
        assert main(["stats", str(bad)]) == 1

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
