"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core import graph_io
from repro.core.generators import barbell_graph
from repro.engine import available_backends


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "g.json"
    graph_io.write_json(barbell_graph(3), path)
    return str(path)


class TestEnumerate:
    def test_lists_cliques(self, graph_file, capsys):
        assert main(["enumerate", graph_file]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert "0 1 2" in out
        assert "3 4 5" in out
        assert "2 3" in out

    def test_count_mode(self, graph_file, capsys):
        assert main(["enumerate", graph_file, "--count"]) == 0
        out = capsys.readouterr().out
        assert "size 2: 1" in out
        assert "size 3: 2" in out
        assert "total: 3" in out

    def test_k_min_filter(self, graph_file, capsys):
        assert main(["enumerate", graph_file, "--k-min", "3"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert out == ["0 1 2", "3 4 5"]


class TestEnumerateSinks:
    def test_sink_count_matches_count_alias(self, graph_file, capsys):
        assert main(["enumerate", graph_file, "--sink", "count"]) == 0
        sink_out = capsys.readouterr().out
        assert main(["enumerate", graph_file, "--count"]) == 0
        assert capsys.readouterr().out == sink_out
        assert "total: 3" in sink_out

    def test_sink_top_k(self, graph_file, capsys):
        assert main(["enumerate", graph_file, "--sink", "top_k:2"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 2
        assert all(len(line.split()) == 3 for line in out)

    def test_sink_jsonl(self, graph_file, tmp_path, capsys):
        import json

        path = tmp_path / "out.jsonl"
        assert main(
            ["enumerate", graph_file, "--sink", f"jsonl:{path}"]
        ) == 0
        assert "wrote 3 cliques" in capsys.readouterr().out
        cliques = sorted(
            tuple(json.loads(line))
            for line in path.read_text().splitlines()
        )
        assert cliques == [(0, 1, 2), (2, 3), (3, 4, 5)]

    def test_sink_collect_prints_cliques(self, graph_file, capsys):
        assert main(["enumerate", graph_file, "--sink", "collect"]) == 0
        assert "0 1 2" in capsys.readouterr().out

    def test_unknown_sink_spec(self, graph_file, capsys):
        assert main(["enumerate", graph_file, "--sink", "warp"]) == 1
        assert "sink" in capsys.readouterr().err

    def test_count_conflicts_with_other_sink(self, graph_file, capsys):
        rc = main(
            ["enumerate", graph_file, "--count", "--sink", "top_k:2"]
        )
        assert rc == 1
        assert "alias" in capsys.readouterr().err


class TestEnumerateBackends:
    @pytest.mark.parametrize("backend", available_backends())
    def test_every_backend_counts_identically(
        self, backend, graph_file, capsys
    ):
        argv = ["enumerate", graph_file, "--backend", backend, "--count"]
        if backend == "multiprocess":
            argv += ["--jobs", "2"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "size 3: 2" in out
        assert "total: 3" in out

    def test_unknown_backend_is_argparse_error(self, graph_file, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["enumerate", graph_file, "--backend", "warpdrive"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_jobs_must_be_positive(self, graph_file, capsys):
        rc = main(
            ["enumerate", graph_file, "--backend", "multiprocess",
             "--jobs", "0"]
        )
        assert rc == 1
        assert "jobs" in capsys.readouterr().err

    def test_jobs_rejected_on_sequential_backend(self, graph_file, capsys):
        rc = main(
            ["enumerate", graph_file, "--backend", "incore", "--jobs", "4"]
        )
        assert rc == 1
        assert "sequential" in capsys.readouterr().err

    @pytest.mark.parametrize("store", ["memory", "disk", "wah"])
    def test_threads_with_jobs_matches_incore_on_every_store(
        self, store, graph_file, capsys
    ):
        """`repro enumerate --backend threads --jobs N` emits the
        byte-identical clique listing on every supported level store."""
        assert main(["enumerate", graph_file]) == 0
        want = capsys.readouterr().out
        assert main(
            ["enumerate", graph_file, "--backend", "threads",
             "--jobs", "4", "--level-store", store]
        ) == 0
        assert capsys.readouterr().out == want


class TestEnumerateLevelStores:
    @pytest.mark.parametrize("store", ["memory", "disk", "wah"])
    def test_every_store_lists_identical_cliques(
        self, store, graph_file, capsys
    ):
        assert main(["enumerate", graph_file]) == 0
        want = sorted(capsys.readouterr().out.strip().splitlines())
        assert main(
            ["enumerate", graph_file, "--level-store", store]
        ) == 0
        got = sorted(capsys.readouterr().out.strip().splitlines())
        assert got == want

    def test_unknown_store_is_argparse_error(self, graph_file, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["enumerate", graph_file, "--level-store", "zip"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_store_rejected_on_multiprocess(self, graph_file, capsys):
        rc = main(
            ["enumerate", graph_file, "--backend", "multiprocess",
             "--jobs", "2", "--level-store", "wah"]
        )
        assert rc == 1
        assert "does not support level store" in capsys.readouterr().err

    def test_unsupported_store_message_identical_on_both_paths(
        self, graph_file, capsys
    ):
        """``repro enumerate`` and the service submit path must refuse
        an unsupported level store with the *identical* ConfigError —
        the single resolution point in the engine config layer."""
        from repro.errors import ConfigError
        from repro.service.jobs import JobSpec
        from repro.engine import EnumerationConfig

        expected = (
            "backend 'multiprocess' does not support level store "
            "'wah'; supported: memory"
        )
        rc = main(
            ["enumerate", graph_file, "--backend", "multiprocess",
             "--jobs", "2", "--level-store", "wah"]
        )
        assert rc == 1
        assert f"error: {expected}" in capsys.readouterr().err
        with pytest.raises(ConfigError) as exc:
            JobSpec(
                graph=graph_file,
                config=EnumerationConfig(
                    backend="multiprocess", level_store="wah", jobs=2
                ),
            )
        assert str(exc.value) == expected


class TestEngines:
    def test_lists_all_registered_backends(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        for name in available_backends():
            assert name in out
        assert "storage" in out

    def test_lists_supported_level_stores(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        assert "level stores" in out
        assert "memory,disk,wah" in out


class TestMaxClique:
    def test_reports_size_and_members(self, graph_file, capsys):
        assert main(["maxclique", graph_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("size 3:")


class TestStats:
    def test_summary_fields(self, graph_file, capsys):
        assert main(["stats", graph_file]) == 0
        out = capsys.readouterr().out
        assert "vertices:            6" in out
        assert "edges:               7" in out
        assert "triangles:           2" in out

    def test_fingerprint_reported(self, graph_file, capsys):
        from repro.core.graph_io import graph_fingerprint
        from repro.core.generators import barbell_graph

        assert main(["stats", graph_file]) == 0
        out = capsys.readouterr().out
        fp = graph_fingerprint(barbell_graph(3))
        assert f"fingerprint:         {fp}" in out


class TestServiceCommands:
    @pytest.fixture
    def server(self):
        from repro.service import EnumerationServer

        with EnumerationServer() as srv:
            yield srv

    def _connect(self, server):
        host, port = server.address
        return ["--connect", f"{host}:{port}"]

    def test_submit_and_wait(self, server, graph_file, capsys):
        rc = main(
            ["submit", graph_file, *self._connect(server),
             "--k-min", "2", "--wait"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "done" in out
        assert "total: 3" in out

    def test_submit_prints_job_id_without_wait(
        self, server, graph_file, capsys
    ):
        assert main(["submit", graph_file, *self._connect(server)]) == 0
        assert capsys.readouterr().out.strip().startswith("job-")

    def test_submit_with_level_store_round_trips(
        self, server, graph_file, capsys
    ):
        """The substrate policy travels the wire and the job completes
        with the same per-size counts as the default substrate."""
        rc = main(
            ["submit", graph_file, *self._connect(server),
             "--level-store", "wah", "--k-min", "2", "--wait"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "done" in out
        assert "total: 3" in out

    def test_jobs_listing(self, server, graph_file, capsys):
        main(
            ["submit", graph_file, *self._connect(server),
             "--label", "mylabel", "--wait"]
        )
        capsys.readouterr()
        assert main(["jobs", *self._connect(server)]) == 0
        out = capsys.readouterr().out
        assert "mylabel" in out
        assert "done" in out

    def test_unreachable_service(self, graph_file, capsys):
        rc = main(
            ["submit", graph_file, "--connect", "127.0.0.1:1"]
        )
        assert rc == 2
        assert "service" in capsys.readouterr().err

    def test_malformed_connect(self, graph_file, capsys):
        rc = main(["submit", graph_file, "--connect", "nonsense"])
        assert rc == 1
        assert "HOST:PORT" in capsys.readouterr().err

    def test_serve_on_taken_port_reports_error(self, server, capsys):
        host, port = server.address
        rc = main(
            ["serve", "--host", host, "--port", str(port)]
        )
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestConvert:
    def test_json_to_dimacs(self, graph_file, tmp_path, capsys):
        out_path = tmp_path / "g.dimacs"
        assert main(["convert", graph_file, str(out_path)]) == 0
        g = graph_io.read_dimacs(out_path)
        assert g.n == 6
        assert g.m == 7


class TestErrors:
    def test_missing_file(self, capsys):
        assert main(["stats", "/nonexistent/g.json"]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_format(self, tmp_path, capsys):
        bad = tmp_path / "g.xyz"
        bad.write_text("junk")
        assert main(["stats", str(bad)]) == 1

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
