"""JobSpec validation and Job lifecycle records."""

from __future__ import annotations

import pytest

from repro.core.generators import complete_graph
from repro.engine import EnumerationConfig
from repro.errors import ParameterError
from repro.service.jobs import Job, JobSpec, JobStatus


class TestJobSpec:
    def test_defaults(self):
        spec = JobSpec(graph=complete_graph(3))
        assert spec.sink == "collect"
        assert spec.priority == 0
        assert spec.use_cache

    def test_path_reference_allowed(self):
        spec = JobSpec(graph="somewhere/g.json")
        assert spec.graph == "somewhere/g.json"

    def test_rejects_non_graph(self):
        with pytest.raises(ParameterError, match="graph"):
            JobSpec(graph=42)

    def test_rejects_non_config(self):
        with pytest.raises(ParameterError, match="config"):
            JobSpec(graph=complete_graph(3), config={"k_min": 2})

    def test_rejects_bad_sink_spec(self):
        with pytest.raises(ParameterError, match="sink"):
            JobSpec(graph=complete_graph(3), sink="warp:9")

    def test_rejects_non_int_priority(self):
        with pytest.raises(ParameterError, match="priority"):
            JobSpec(graph=complete_graph(3), priority="high")

    def test_frozen(self):
        spec = JobSpec(graph=complete_graph(3))
        with pytest.raises(AttributeError):
            spec.priority = 5


class TestJobStatus:
    def test_terminal_states(self):
        assert not JobStatus.PENDING.terminal
        assert not JobStatus.RUNNING.terminal
        assert JobStatus.DONE.terminal
        assert JobStatus.FAILED.terminal
        assert JobStatus.CANCELLED.terminal


class TestJob:
    def test_initial_state(self):
        job = Job("job-000001", JobSpec(graph=complete_graph(3)))
        assert job.status is JobStatus.PENDING
        assert not job.done
        assert job.result is None

    def test_wait_timeout(self):
        job = Job("job-000001", JobSpec(graph=complete_graph(3)))
        with pytest.raises(TimeoutError, match="job-000001"):
            job.wait(timeout=0.01)

    def test_finish_unblocks_wait(self):
        job = Job("job-000001", JobSpec(graph=complete_graph(3)))
        job._mark_running()
        job._finish(JobStatus.DONE)
        assert job.wait(timeout=0.01) is job
        assert job.done
        assert job.run_seconds >= 0

    def test_to_dict_is_json_safe(self):
        import json

        job = Job(
            "job-000007",
            JobSpec(graph=complete_graph(3), sink="count", label="sweep"),
        )
        job._mark_running()
        job._finish(JobStatus.FAILED, "boom")
        payload = json.loads(json.dumps(job.to_dict()))
        assert payload["id"] == "job-000007"
        assert payload["status"] == "failed"
        assert payload["error"] == "boom"
        assert payload["label"] == "sweep"
        assert payload["level_store"] is None

    def test_to_dict_reports_level_store(self):
        from repro.engine import EnumerationConfig

        job = Job(
            "job-000008",
            JobSpec(
                graph=complete_graph(3),
                config=EnumerationConfig(level_store="wah"),
            ),
        )
        assert job.to_dict()["level_store"] == "wah"


class TestSubmitTimeResolution:
    def test_spec_stores_the_resolved_config(self):
        """The spec keeps the k_min-promoted config, so the cache key
        matches the run the engine actually dispatches."""
        from repro.engine import register_backend, unregister_backend

        @register_backend("test-spec-floor", min_k_min=3)
        def run_floor(g, config, on_clique=None):
            """Never dispatched in this test."""

        try:
            spec = JobSpec(
                graph=complete_graph(2),
                config=EnumerationConfig(
                    backend="test-spec-floor", k_min=1
                ),
            )
            promoted = JobSpec(
                graph=complete_graph(2),
                config=EnumerationConfig(
                    backend="test-spec-floor", k_min=3
                ),
            )
        finally:
            unregister_backend("test-spec-floor")
        assert spec.config.k_min == 3
        assert spec.config == promoted.config
        assert hash(spec.config) == hash(promoted.config)

    def test_unsupported_store_refused_at_spec_construction(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="does not support"):
            JobSpec(
                graph=complete_graph(2),
                config=EnumerationConfig(
                    backend="multiprocess", level_store="wah", jobs=2
                ),
            )

    def test_unknown_backend_refused_at_spec_construction(self):
        with pytest.raises(ParameterError, match="unknown backend"):
            JobSpec(
                graph=complete_graph(2),
                config=EnumerationConfig(backend="warpdrive"),
            )


class TestToDictParallelStats:
    def test_to_dict_reports_worker_and_transfer_counts(self):
        """n_workers/transfers come straight from the attached result —
        pinned here so the wire payload cannot silently regress to a
        constant."""
        from repro.core.clique_enumerator import EnumerationResult

        job = Job("job-000042", JobSpec(graph=complete_graph(2)))
        job.result = EnumerationResult(
            backend="threads", n_workers=4, transfers=9
        )
        payload = job.to_dict()
        assert payload["n_workers"] == 4
        assert payload["transfers"] == 9
