"""Scheduler behaviour: dispatch, caching, budgets, cancellation, drain."""

from __future__ import annotations

import threading

import pytest

from repro.core import graph_io
from repro.core.generators import barbell_graph, complete_graph, erdos_renyi
from repro.engine import EnumerationConfig, EnumerationEngine
from repro.errors import ParameterError
from repro.service import JobScheduler, JobSpec, JobStatus, ResultCache

ENGINE = EnumerationEngine()


@pytest.fixture
def g():
    return erdos_renyi(30, 0.3, seed=1)


@pytest.fixture
def sched():
    with JobScheduler(workers=2) as s:
        yield s


class TestDispatch:
    def test_job_reaches_done_with_reference_cliques(self, sched, g):
        cfg = EnumerationConfig(k_min=2)
        job = sched.submit(JobSpec(graph=g, config=cfg)).wait(30)
        assert job.status is JobStatus.DONE
        assert sorted(job.result.cliques) == sorted(
            ENGINE.run(g, cfg).cliques
        )
        assert job.sink_summary["cliques"] == len(job.result.cliques)

    def test_batch_submission(self, sched):
        specs = [
            JobSpec(graph=complete_graph(n), config=EnumerationConfig())
            for n in (3, 4, 5)
        ]
        jobs = sched.submit_batch(specs)
        sched.drain(30)
        assert [j.wait().result.cliques for j in jobs] == [
            [(0, 1, 2)], [(0, 1, 2, 3)], [(0, 1, 2, 3, 4)]
        ]

    def test_path_referenced_graph(self, sched, tmp_path):
        path = tmp_path / "g.json"
        graph_io.write_json(barbell_graph(3), path)
        job = sched.submit(JobSpec(graph=str(path))).wait(30)
        assert job.status is JobStatus.DONE
        assert sorted(job.result.cliques) == [(0, 1, 2), (2, 3), (3, 4, 5)]

    def test_missing_graph_file_fails_job_not_worker(self, sched):
        job = sched.submit(JobSpec(graph="/nonexistent/g.json")).wait(30)
        assert job.status is JobStatus.FAILED
        assert "nonexistent" in job.error
        # the worker survived: a follow-up job still runs
        ok = sched.submit(JobSpec(graph=complete_graph(3))).wait(30)
        assert ok.status is JobStatus.DONE

    def test_streaming_sink_job(self, sched, g, tmp_path):
        path = tmp_path / "out.jsonl"
        job = sched.submit(
            JobSpec(
                graph=g,
                config=EnumerationConfig(k_min=2),
                sink=f"jsonl:{path}",
                use_cache=False,
            )
        ).wait(30)
        assert job.status is JobStatus.DONE
        assert job.result.cliques == []  # streamed, never materialized
        assert path.exists()
        assert job.sink_summary["cliques"] > 0

    def test_unknown_job_id(self, sched):
        with pytest.raises(ParameterError, match="unknown job"):
            sched.get("job-999999")


class TestCaching:
    def test_repeat_job_is_cache_hit_without_reenumeration(self, g):
        cfg = EnumerationConfig(k_min=2)
        with JobScheduler(workers=1) as sched:
            first = sched.submit(JobSpec(graph=g, config=cfg)).wait(30)
            second = sched.submit(JobSpec(graph=g, config=cfg)).wait(30)
            assert not first.cache_hit
            assert second.cache_hit
            assert second.result is first.result
            assert sched.cache.stats()["hits"] == 1
            # aggregate counters count the work once, plus the tallies
            agg = sched.counters()
            assert agg.pair_checks == first.result.counters.pair_checks
            assert agg.extra["cache_hits"] == 1

    def test_cache_hit_replays_into_streaming_sink(self, g, tmp_path):
        cfg = EnumerationConfig(k_min=2)
        path = tmp_path / "replay.jsonl"
        with JobScheduler(workers=1) as sched:
            sched.submit(JobSpec(graph=g, config=cfg)).wait(30)
            job = sched.submit(
                JobSpec(graph=g, config=cfg, sink=f"jsonl:{path}")
            ).wait(30)
            assert job.cache_hit
            assert (
                len(path.read_text().splitlines())
                == job.sink_summary["cliques"]
                > 0
            )
            # a streaming-sink hit must not expose the cached clique
            # list — hit and miss produce the same clique-less result
            assert job.result.cliques == []

    def test_use_cache_false_bypasses(self, g):
        cfg = EnumerationConfig(k_min=2)
        with JobScheduler(workers=1) as sched:
            sched.submit(JobSpec(graph=g, config=cfg)).wait(30)
            job = sched.submit(
                JobSpec(graph=g, config=cfg, use_cache=False)
            ).wait(30)
            assert not job.cache_hit

    def test_disabled_cache(self, g):
        cfg = EnumerationConfig(k_min=2)
        with JobScheduler(workers=1, cache=None) as sched:
            sched.submit(JobSpec(graph=g, config=cfg)).wait(30)
            job = sched.submit(JobSpec(graph=g, config=cfg)).wait(30)
            assert not job.cache_hit
            assert sched.stats()["cache"] is None

    def test_shared_cache_across_schedulers(self, g):
        cache = ResultCache()
        cfg = EnumerationConfig(k_min=2)
        with JobScheduler(workers=1, cache=cache) as one:
            one.submit(JobSpec(graph=g, config=cfg)).wait(30)
        with JobScheduler(workers=1, cache=cache) as two:
            job = two.submit(JobSpec(graph=g, config=cfg)).wait(30)
            assert job.cache_hit


class TestBudgetsAndFailure:
    def test_budget_exceeded_fails_job(self, sched):
        g = erdos_renyi(30, 0.5, seed=2)
        job = sched.submit(
            JobSpec(
                graph=g,
                config=EnumerationConfig(k_min=2, max_cliques=3),
            )
        ).wait(30)
        assert job.status is JobStatus.FAILED
        assert "budget" in job.error
        assert "emitted=3" in job.error

    def test_bad_backend_option_fails_job(self, sched):
        job = sched.submit(
            JobSpec(
                graph=complete_graph(4),
                config=EnumerationConfig(options={"bogus": 1}),
            )
        ).wait(30)
        assert job.status is JobStatus.FAILED
        assert "option" in job.error

    def test_failed_jsonl_job_preserves_previous_output(
        self, sched, tmp_path
    ):
        """Regression: a job that fails before emitting must not
        truncate the jsonl file a previous job wrote."""
        path = tmp_path / "out.jsonl"
        g = complete_graph(4)
        first = sched.submit(
            JobSpec(graph=g, sink=f"jsonl:{path}", use_cache=False)
        ).wait(30)
        assert first.status is JobStatus.DONE
        good = path.read_text()
        assert good
        failed = sched.submit(
            JobSpec(
                graph=g,
                config=EnumerationConfig(max_cliques=0),
                sink=f"jsonl:{path}",
                use_cache=False,
            )
        ).wait(30)
        assert failed.status is JobStatus.FAILED
        assert path.read_text() == good


class TestPriorityAndCancellation:
    def test_priority_orders_pending_queue(self):
        with JobScheduler(workers=1) as sched:
            release = threading.Event()
            started = threading.Event()
            original = sched.engine.run

            def gated(graph, config=None, on_clique=None):
                started.set()
                release.wait(30)
                return original(graph, config, on_clique)

            sched.engine.run = gated
            blocker = sched.submit(JobSpec(graph=complete_graph(3)))
            assert started.wait(30)
            sched.engine.run = original
            low = sched.submit(
                JobSpec(graph=complete_graph(4), priority=0)
            )
            high = sched.submit(
                JobSpec(graph=complete_graph(5), priority=5)
            )
            release.set()
            sched.drain(30)
            assert blocker.status is JobStatus.DONE
            assert high.finished_at < low.finished_at

    def test_cancel_pending_job(self):
        with JobScheduler(workers=1) as sched:
            release = threading.Event()
            started = threading.Event()
            original = sched.engine.run

            def gated(graph, config=None, on_clique=None):
                started.set()
                release.wait(30)
                return original(graph, config, on_clique)

            sched.engine.run = gated
            blocker = sched.submit(JobSpec(graph=complete_graph(3)))
            assert started.wait(30)
            sched.engine.run = original
            victim = sched.submit(JobSpec(graph=complete_graph(4)))
            assert sched.cancel(victim.id)
            release.set()
            sched.drain(30)
            assert victim.status is JobStatus.CANCELLED
            assert victim.result is None
            assert blocker.status is JobStatus.DONE

    def test_cancel_running_job_with_no_emissions_still_cancels(self):
        """Regression: a run that emits nothing never reaches emit()'s
        cancel check; an acknowledged cancellation must still win over
        DONE after engine.run returns."""
        from repro.core.graph import Graph

        with JobScheduler(workers=1) as sched:
            release = threading.Event()
            started = threading.Event()
            original = sched.engine.run

            def gated(graph, config=None, on_clique=None):
                started.set()
                release.wait(30)
                return original(graph, config, on_clique)

            sched.engine.run = gated
            # edgeless graph at k_min=2: the run emits zero cliques
            job = sched.submit(
                JobSpec(graph=Graph(5), config=EnumerationConfig(k_min=2))
            )
            assert started.wait(30)
            assert sched.cancel(job.id)
            release.set()
            job.wait(30)
            sched.engine.run = original
            assert job.status is JobStatus.CANCELLED
            assert job.result is None

    def test_cancel_terminal_job_returns_false(self, sched):
        job = sched.submit(JobSpec(graph=complete_graph(3))).wait(30)
        assert not sched.cancel(job.id)

    def test_cancel_running_check_holds_scheduler_lock(self):
        """Regression: cancel() once checked ``status is RUNNING``
        *outside* the lock, so a worker finishing concurrently could
        turn the acknowledged cancellation into a claim against an
        already-terminal job.  Now the check and the flag-set happen
        under the same lock every terminal transition takes."""
        with JobScheduler(workers=1) as sched:
            release = threading.Event()
            started = threading.Event()
            original = sched.engine.run

            def gated(graph, config=None, on_clique=None):
                started.set()
                release.wait(30)
                return original(graph, config, on_clique)

            sched.engine.run = gated
            job = sched.submit(JobSpec(graph=complete_graph(3)))
            assert started.wait(30)
            held_at_set: list[bool] = []
            real_set = job._cancel.set

            def recording_set():
                held_at_set.append(sched._lock._is_owned())
                real_set()

            job._cancel.set = recording_set
            assert sched.cancel(job.id)
            job._cancel.set = real_set
            sched.engine.run = original
            release.set()
            job.wait(30)
            assert held_at_set == [True]
            assert job.status is JobStatus.CANCELLED


class TestShutdown:
    def test_shutdown_rejects_new_submissions(self):
        sched = JobScheduler(workers=1)
        sched.submit(JobSpec(graph=complete_graph(3)))
        sched.shutdown(wait=True)
        with pytest.raises(ParameterError, match="shut down"):
            sched.submit(JobSpec(graph=complete_graph(3)))

    def test_graceful_shutdown_finishes_queue(self):
        sched = JobScheduler(workers=1)
        jobs = [
            sched.submit(JobSpec(graph=complete_graph(n)))
            for n in (3, 4, 5, 6)
        ]
        sched.shutdown(wait=True)
        assert all(j.status is JobStatus.DONE for j in jobs)

    def test_drain_timeout(self):
        with JobScheduler(workers=1) as sched:
            release = threading.Event()
            original = sched.engine.run

            def gated(graph, config=None, on_clique=None):
                release.wait(30)
                return original(graph, config, on_clique)

            sched.engine.run = gated
            sched.submit(JobSpec(graph=complete_graph(3)))
            with pytest.raises(TimeoutError):
                sched.drain(timeout=0.05)
            release.set()
            sched.drain(30)

    def test_invalid_worker_count(self):
        with pytest.raises(ParameterError):
            JobScheduler(workers=0)

    def test_invalid_retention_bounds(self):
        with pytest.raises(ParameterError):
            JobScheduler(retain_jobs=0)
        with pytest.raises(ParameterError):
            JobScheduler(graph_cache_size=0)


class TestRetention:
    def test_oldest_terminal_jobs_pruned_past_bound(self):
        with JobScheduler(workers=1, retain_jobs=3) as sched:
            jobs = []
            for _ in range(6):
                jobs.append(
                    sched.submit(JobSpec(graph=complete_graph(3)))
                )
                jobs[-1].wait(30)
            ids = [j.id for j in sched.jobs()]
            assert len(ids) == 3
            assert jobs[-1].id in ids  # newest survives
            assert jobs[0].id not in ids  # oldest terminal pruned
            with pytest.raises(ParameterError, match="unknown job"):
                sched.get(jobs[0].id)

    def test_in_flight_jobs_never_pruned(self):
        with JobScheduler(workers=1, retain_jobs=1) as sched:
            release = threading.Event()
            started = threading.Event()
            original = sched.engine.run

            def gated(graph, config=None, on_clique=None):
                started.set()
                release.wait(30)
                return original(graph, config, on_clique)

            sched.engine.run = gated
            running = sched.submit(JobSpec(graph=complete_graph(3)))
            assert started.wait(30)
            sched.engine.run = original
            pending = [
                sched.submit(JobSpec(graph=complete_graph(4)))
                for _ in range(3)
            ]
            # nothing terminal yet → nothing pruned despite the bound
            assert len(sched.jobs()) == 4
            release.set()
            sched.drain(30)
            assert running.status is JobStatus.DONE
            assert all(p.status is JobStatus.DONE for p in pending)

    def test_pruning_and_listing_use_submission_order_not_id_sort(self):
        """Regression: ordering by zero-padded id strings breaks past
        job-999999; insertion order must drive listing and pruning."""
        with JobScheduler(workers=1, retain_jobs=2) as sched:
            # simulate a service that has crossed the 6-digit id width
            import itertools

            sched._seq = itertools.count(999999)
            jobs = []
            for _ in range(3):
                jobs.append(
                    sched.submit(JobSpec(graph=complete_graph(3)))
                )
                jobs[-1].wait(30)
            ids = [j.id for j in sched.jobs()]
            # newest two retained, in submission order
            assert ids == [jobs[1].id, jobs[2].id]

    def test_graph_memo_is_lru_bounded(self, tmp_path):
        with JobScheduler(
            workers=1, graph_cache_size=2, cache=None
        ) as sched:
            for i in range(4):
                path = tmp_path / f"g{i}.json"
                graph_io.write_json(complete_graph(3), path)
                sched.submit(JobSpec(graph=str(path))).wait(30)
            assert len(sched._graphs) == 2


class TestStats:
    def test_stats_shape(self, sched):
        sched.submit(JobSpec(graph=complete_graph(3))).wait(30)
        stats = sched.stats()
        assert stats["workers"] == 2
        assert stats["jobs"]["done"] == 1
        assert stats["cache"]["misses"] == 1
        assert stats["admission"]["budget_bytes"] is None

    def test_stats_queued_counts_pending_jobs_not_queue_entries(self):
        """Regression: ``stats()["queued"]`` used to report the raw
        ``Queue.qsize()``, which counts stale entries for jobs already
        cancelled while pending (and, post-shutdown, the worker
        sentinels).  It must report jobs actually waiting to run."""
        with JobScheduler(workers=1) as sched:
            release = threading.Event()
            started = threading.Event()
            original = sched.engine.run

            def gated(graph, config=None, on_clique=None):
                started.set()
                release.wait(30)
                return original(graph, config, on_clique)

            sched.engine.run = gated
            blocker = sched.submit(JobSpec(graph=complete_graph(3)))
            assert started.wait(30)
            sched.engine.run = original
            victim = sched.submit(JobSpec(graph=complete_graph(4)))
            assert sched.stats()["queued"] == 1
            assert sched.cancel(victim.id)
            # the cancelled job's queue entry is still enqueued, but it
            # is no longer *queued work*
            assert sched.stats()["queued"] == 0
            release.set()
            sched.drain(30)
            assert blocker.status is JobStatus.DONE
            assert sched.stats()["queued"] == 0
