"""Service-layer concurrency stress: the scheduler under the threads
backend, cancellation mid-run, and raising sinks.

Every test here is ``@pytest.mark.stress``: CI re-runs the marked set
under ``PYTHONFAULTHANDLER=1`` with a hard timeout, so a deadlock in
the scheduler/worker-pool interplay fails fast with stacks instead of
hanging the runner.  The regression this file pins forever: a sink that
raises mid-stream must *fail the job*, never hang or kill the worker
pool.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.generators import planted_partition
from repro.engine import EnumerationConfig, EnumerationEngine
from repro.service import scheduler as scheduler_module
from repro.service.jobs import JobSpec, JobStatus
from repro.service.scheduler import JobScheduler
from repro.service.sinks import CollectSink

pytestmark = pytest.mark.stress


@pytest.fixture
def graph():
    return planted_partition(
        70, [9, 8, 8, 7], p_in=0.9, p_out=0.04, seed=21
    )[0]


@pytest.fixture
def reference(graph):
    return EnumerationEngine().run(
        graph, EnumerationConfig(backend="incore", k_min=2)
    )


def _threads_spec(graph, jobs=2, priority=0, **kw):
    return JobSpec(
        graph=graph,
        config=EnumerationConfig(
            backend="threads",
            k_min=2,
            jobs=jobs,
            options={"steal_granularity": 1},
        ),
        priority=priority,
        **kw,
    )


class _SlowCollectSink(CollectSink):
    """Collects but sleeps per clique, keeping a run cancellably long."""

    def __init__(self, delay: float, started: threading.Event):
        super().__init__()
        self._delay = delay
        self._started = started

    def _accept(self, clique):
        self._started.set()
        time.sleep(self._delay)
        super()._accept(clique)


class _ExplodingSink(CollectSink):
    """Raises mid-stream after accepting a few cliques."""

    def __init__(self, after: int):
        super().__init__()
        self._after = after

    def _accept(self, clique):
        if self.count > self._after:
            raise RuntimeError("sink exploded mid-stream")
        super()._accept(clique)


class TestSchedulerUnderThreadsBackend:
    def test_drain_completes_a_threads_burst(self, graph, reference):
        with JobScheduler(workers=3, cache=None) as sched:
            jobs = [
                sched.submit(_threads_spec(graph, jobs=2, priority=i % 3))
                for i in range(9)
            ]
            sched.drain(timeout=120)
            for job in jobs:
                assert job.status is JobStatus.DONE, job.error
                assert job.result.cliques == reference.cliques
                assert job.result.n_workers == 2

    def test_mixed_backend_burst_agrees(self, graph, reference):
        with JobScheduler(workers=3, cache=None) as sched:
            specs = [
                JobSpec(
                    graph=graph,
                    config=EnumerationConfig(
                        backend=backend,
                        k_min=2,
                        jobs=2 if backend == "threads" else None,
                    ),
                )
                for backend in ("incore", "threads", "ooc", "threads")
            ]
            jobs = sched.submit_batch(specs)
            sched.drain(timeout=120)
            for job in jobs:
                assert job.status is JobStatus.DONE, job.error
                assert job.result.cliques == reference.cliques

    def test_shutdown_nowait_cancels_queued_threads_jobs(self, graph):
        sched = JobScheduler(workers=1, cache=None)
        jobs = [sched.submit(_threads_spec(graph)) for _ in range(6)]
        sched.shutdown(wait=False)
        for job in jobs:
            job.wait(timeout=60)
            assert job.status in (JobStatus.DONE, JobStatus.CANCELLED)


class TestCancellationMidLevel:
    def test_cancel_lands_while_threads_job_runs(self, graph, monkeypatch):
        """Cancel a RUNNING threads job: it must terminate CANCELLED
        (cooperatively, at an emission) without wedging the worker."""
        started = threading.Event()
        monkeypatch.setattr(
            scheduler_module,
            "make_sink",
            lambda spec: _SlowCollectSink(0.02, started),
        )
        with JobScheduler(workers=1, cache=None) as sched:
            job = sched.submit(_threads_spec(graph, jobs=2))
            assert started.wait(timeout=60), "job never started emitting"
            assert sched.cancel(job.id)
            job.wait(timeout=60)
            assert job.status is JobStatus.CANCELLED
            # the worker survived: a follow-up job runs to completion
            monkeypatch.setattr(scheduler_module, "make_sink",
                                lambda spec: CollectSink())
            follow_up = sched.submit(_threads_spec(graph, jobs=2))
            follow_up.wait(timeout=120)
            assert follow_up.status is JobStatus.DONE

    def test_cancel_pending_never_runs(self, graph):
        with JobScheduler(workers=1, cache=None) as sched:
            blocker = sched.submit(_threads_spec(graph))
            queued = [sched.submit(_threads_spec(graph)) for _ in range(3)]
            for job in queued:
                sched.cancel(job.id)
            sched.drain(timeout=120)
            assert blocker.status is JobStatus.DONE
            assert all(
                job.status is JobStatus.CANCELLED for job in queued
            )


class TestRaisingSinkRegression:
    def test_sink_raising_mid_stream_fails_job_not_pool(
        self, graph, reference, monkeypatch
    ):
        """THE regression: a mid-stream sink exception must surface as
        a FAILED job — with the error recorded — while the worker pool
        keeps serving subsequent jobs."""
        monkeypatch.setattr(
            scheduler_module, "make_sink", lambda spec: _ExplodingSink(3)
        )
        with JobScheduler(workers=2, cache=None) as sched:
            exploding = [
                sched.submit(_threads_spec(graph, jobs=2))
                for _ in range(4)
            ]
            sched.drain(timeout=120)
            for job in exploding:
                assert job.status is JobStatus.FAILED
                assert "exploded mid-stream" in (job.error or "")
            # pool is intact: a healthy job on the same scheduler runs
            monkeypatch.setattr(scheduler_module, "make_sink",
                                lambda spec: CollectSink())
            healthy = sched.submit(_threads_spec(graph, jobs=2))
            healthy.wait(timeout=120)
            assert healthy.status is JobStatus.DONE
            assert healthy.result.cliques == reference.cliques

    def test_sink_raising_on_sequential_backend_too(
        self, graph, monkeypatch
    ):
        """The guarantee is backend-independent (same emit path)."""
        monkeypatch.setattr(
            scheduler_module, "make_sink", lambda spec: _ExplodingSink(3)
        )
        with JobScheduler(workers=1, cache=None) as sched:
            job = sched.submit(
                JobSpec(
                    graph=graph,
                    config=EnumerationConfig(backend="incore", k_min=2),
                )
            )
            job.wait(timeout=120)
            assert job.status is JobStatus.FAILED
            assert "exploded mid-stream" in (job.error or "")
