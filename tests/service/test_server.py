"""End-to-end server/client round trips over the JSON-lines protocol.

Covers the PR acceptance criteria: submitted jobs reach DONE with
clique counts identical to a direct ``EnumerationEngine.run``, a
repeated identical job is served from cache (hit counter increments,
no re-enumeration), and ``jsonl`` sink output on disk matches the
``collect`` sink for the same graph.
"""

from __future__ import annotations

import json

import pytest

from repro.core import graph_io
from repro.core.generators import barbell_graph, erdos_renyi
from repro.engine import EnumerationConfig, EnumerationEngine
from repro.errors import ParameterError, ServiceError
from repro.service import (
    EnumerationServer,
    JobScheduler,
    JobSpec,
    ServiceClient,
)
from repro.service.protocol import (
    config_from_payload,
    config_to_payload,
    spec_from_payload,
    spec_to_payload,
)

ENGINE = EnumerationEngine()


@pytest.fixture
def g():
    return erdos_renyi(30, 0.3, seed=1)


@pytest.fixture
def server():
    with EnumerationServer() as srv:
        yield srv


@pytest.fixture
def client(server):
    with ServiceClient(server.address) as c:
        yield c


class TestProtocolPayloads:
    def test_config_round_trip(self):
        cfg = EnumerationConfig(
            backend="ooc", k_min=3, k_max=7, max_cliques=10,
            options={"chunk_size": 8},
        )
        assert config_from_payload(config_to_payload(cfg)) == cfg

    def test_default_config_payload_is_empty(self):
        assert config_to_payload(EnumerationConfig()) == {}

    def test_level_store_travels_in_config_payload(self):
        cfg = EnumerationConfig(level_store="wah")
        payload = config_to_payload(cfg)
        assert payload == {"level_store": "wah"}
        assert config_from_payload(payload) == cfg

    def test_bad_level_store_rejected_at_payload_parse(self):
        with pytest.raises(ParameterError, match="level_store"):
            config_from_payload({"level_store": "zip"})

    def test_spec_round_trip_with_inline_graph(self):
        spec = JobSpec(
            graph=barbell_graph(3),
            config=EnumerationConfig(k_min=2),
            sink="count",
            priority=3,
            label="x",
        )
        rebuilt = spec_from_payload(spec_to_payload(spec))
        assert rebuilt.graph == spec.graph
        assert rebuilt.config == spec.config
        assert (rebuilt.sink, rebuilt.priority, rebuilt.label) == (
            "count", 3, "x"
        )

    def test_spec_payload_requires_a_graph(self):
        with pytest.raises(ParameterError, match="graph"):
            spec_from_payload({"sink": "count"})

    def test_spec_payload_rejects_unknown_fields(self):
        """Regression: a misspelled config key must fail the submit,
        not silently run the job with defaults."""
        with pytest.raises(ParameterError, match="kmin"):
            spec_from_payload({"graph": "g.json", "kmin": 3})

    def test_unknown_submit_field_rejected_over_the_wire(self, client):
        with pytest.raises(ServiceError, match="unknown submit field"):
            client.call("submit", graph="g.json", max_clique=100)


class TestSubmitTimeResolution:
    EXPECTED = (
        "backend 'multiprocess' does not support level store "
        "'wah'; supported: memory"
    )

    def test_unsupported_store_refused_client_side(self, client, g):
        """ServiceClient.submit builds the JobSpec locally, so the
        ConfigError fires before a byte goes over the wire."""
        from repro.errors import ConfigError

        with pytest.raises(ConfigError) as exc:
            client.submit(
                g,
                config=EnumerationConfig(
                    backend="multiprocess", level_store="wah", jobs=2
                ),
            )
        assert str(exc.value) == self.EXPECTED

    def test_unsupported_store_refused_server_side_too(self, client):
        """A raw wire submit (no client-side JobSpec) is refused by the
        server with the identical message — no queue slot is burned on
        a job doomed to fail at dispatch."""
        from repro.errors import ServiceError

        with pytest.raises(ServiceError) as exc:
            client.call(
                "submit",
                graph_inline={"n": 3, "edges": [[0, 1], [1, 2]]},
                backend="multiprocess",
                level_store="wah",
                jobs=2,
            )
        assert self.EXPECTED in str(exc.value)
        assert client.jobs() == []  # nothing was queued

    def test_unknown_backend_refused_at_submit(self, client):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError, match="unknown backend"):
            client.call(
                "submit",
                graph_inline={"n": 2, "edges": [[0, 1]]},
                backend="warpdrive",
            )

    def test_threads_job_round_trips_with_worker_stats(self, client, g):
        """A threads job travels the wire, runs, and reports its
        parallel substrate (worker count, stolen sub-lists)."""
        job = client.wait(
            client.submit(
                g,
                config=EnumerationConfig(
                    backend="threads",
                    k_min=2,
                    jobs=2,
                    options={"steal_granularity": 1},
                ),
            ),
            timeout=60,
        )
        assert job["status"] == "done"
        assert job["backend"] == "threads"
        assert job["n_workers"] == 2
        assert job["transfers"] >= 0
        ref = ENGINE.run(g, EnumerationConfig(backend="incore", k_min=2))
        assert job["n_cliques"] == len(ref.cliques)


class TestRoundTrip:
    def test_ping(self, client):
        assert client.ping()["pong"]

    def test_submitted_job_matches_direct_engine_run(self, client, g):
        """Acceptance: DONE with counts identical to EnumerationEngine."""
        reference = ENGINE.run(g, EnumerationConfig(k_min=2))
        job_id = client.submit(g, k_min=2)
        job = client.wait(job_id, timeout=60)
        assert job["status"] == "done"
        assert job["n_cliques"] == len(reference.cliques)
        assert sorted(client.cliques(job_id)) == sorted(reference.cliques)

    def test_repeated_job_served_from_cache(self, client, g):
        """Acceptance: hit counter increments, no re-enumeration."""
        first = client.wait(client.submit(g, k_min=2), timeout=60)
        assert not first["cache_hit"]
        before = client.stats()["cache"]
        second = client.wait(client.submit(g, k_min=2), timeout=60)
        after = client.stats()["cache"]
        assert second["cache_hit"]
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]  # no re-enumeration
        assert second["n_cliques"] == first["n_cliques"]

    def test_jsonl_sink_matches_collect_on_disk(self, client, g, tmp_path):
        """Acceptance: jsonl output on disk == collect sink output."""
        collect_id = client.submit(g, k_min=2, use_cache=False)
        collected = sorted(client.cliques(client.wait(collect_id)["id"]))
        path = tmp_path / "cliques.jsonl"
        jsonl_id = client.submit(
            g, k_min=2, sink=f"jsonl:{path}", use_cache=False
        )
        job = client.wait(jsonl_id, timeout=60)
        assert job["status"] == "done"
        on_disk = sorted(
            tuple(json.loads(line))
            for line in path.read_text().splitlines()
        )
        assert on_disk == collected

    def test_path_referenced_graph_submission(self, client, tmp_path):
        path = tmp_path / "g.json"
        graph_io.write_json(barbell_graph(3), path)
        job = client.wait(client.submit(str(path), k_min=1), timeout=60)
        assert job["status"] == "done"
        assert job["n_cliques"] == 3

    def test_sweep_submission(self, client):
        graphs = [erdos_renyi(20, 0.3, seed=s) for s in range(3)]
        ids = client.submit_sweep(
            graphs, k_min=2, labels=[f"t{s}" for s in range(3)]
        )
        jobs = [client.wait(i, timeout=60) for i in ids]
        assert [j["status"] for j in jobs] == ["done"] * 3
        assert [j["label"] for j in jobs] == ["t0", "t1", "t2"]

    def test_jobs_listing(self, client, g):
        client.wait(client.submit(g, k_min=2, label="a"), timeout=60)
        listing = client.jobs()
        assert len(listing) == 1
        assert listing[0]["label"] == "a"

    def test_cancel_unknown_job_is_service_error(self, client):
        with pytest.raises(ServiceError, match="unknown job"):
            client.cancel("job-999999")

    def test_failed_job_reports_error(self, client):
        job_id = client.submit("/nonexistent/g.json", k_min=2)
        job = client.wait(job_id, timeout=60)
        assert job["status"] == "failed"
        assert "nonexistent" in job["error"]

    def test_wait_deadline_raises_timeout_error(self, server):
        """A server-side wait deadline surfaces as TimeoutError on the
        client — matching the in-process Job.wait contract — not as a
        generic ServiceError."""
        import threading

        release = threading.Event()
        original = server.scheduler.engine.run

        def gated(graph, config=None, on_clique=None):
            release.wait(30)
            return original(graph, config, on_clique)

        server.scheduler.engine.run = gated
        try:
            with ServiceClient(server.address) as client:
                job_id = client.submit(barbell_graph(3))
                with pytest.raises(TimeoutError):
                    client.wait(job_id, timeout=0.05)
        finally:
            release.set()
            server.scheduler.engine.run = original

    def test_result_of_unfinished_job_refused(self, server):
        # a scheduler with a gated engine keeps the job running
        import threading

        release = threading.Event()
        original = server.scheduler.engine.run

        def gated(graph, config=None, on_clique=None):
            release.wait(30)
            return original(graph, config, on_clique)

        server.scheduler.engine.run = gated
        try:
            with ServiceClient(server.address) as client:
                job_id = client.submit(barbell_graph(3))
                with pytest.raises(ServiceError, match="still"):
                    client.result(job_id)
        finally:
            release.set()
            server.scheduler.engine.run = original

    def test_connection_survives_bad_request(self, client, g):
        with pytest.raises(ServiceError, match="unknown op"):
            client.call("warpdrive")
        assert client.ping()["pong"]  # same socket still works

    def test_submit_rejects_config_and_kwargs(self, client, g):
        with pytest.raises(ServiceError, match="not both"):
            client.submit(g, config=EnumerationConfig(), k_min=2)


class TestUnixSocket:
    def test_round_trip_over_unix_socket(self, tmp_path, g):
        sock = tmp_path / "repro.sock"
        with EnumerationServer(socket_path=sock) as server:
            assert server.address == str(sock)
            with ServiceClient(server.address) as client:
                job = client.wait(client.submit(g, k_min=2), timeout=60)
                assert job["status"] == "done"
        assert not sock.exists()  # cleaned up on shutdown

    def test_live_socket_is_not_hijacked(self, tmp_path):
        sock = tmp_path / "repro.sock"
        with EnumerationServer(socket_path=sock) as first:
            with pytest.raises(ParameterError, match="live server"):
                EnumerationServer(socket_path=sock)
            # the first server is untouched and still answering
            with ServiceClient(first.address) as client:
                assert client.ping()["pong"]

    def test_stale_socket_file_is_reclaimed(self, tmp_path, g):
        import socket as socketlib

        sock = tmp_path / "repro.sock"
        # leftover from a crashed server: a real socket file with
        # nothing listening on it
        leftover = socketlib.socket(
            socketlib.AF_UNIX, socketlib.SOCK_STREAM
        )
        leftover.bind(str(sock))
        leftover.close()
        assert sock.exists()
        with EnumerationServer(socket_path=sock) as server:
            with ServiceClient(server.address) as client:
                job = client.wait(client.submit(g, k_min=2), timeout=60)
                assert job["status"] == "done"

    def test_regular_file_at_socket_path_is_refused(self, tmp_path):
        """Regression: a mistyped --socket path pointing at a real file
        must be refused, never unlinked."""
        target = tmp_path / "important.dat"
        target.write_text("precious")
        with pytest.raises(ParameterError, match="not a socket"):
            EnumerationServer(socket_path=target)
        assert target.read_text() == "precious"


class TestBrokenConnection:
    def test_client_side_timeout_poisons_the_client(self, server):
        """Regression: a socket-level timeout desynchronizes the
        request/response stream; later calls must fail with a clear
        'broken' error instead of reading the stale late response."""
        import threading

        release = threading.Event()
        original = server.scheduler.engine.run

        def gated(graph, config=None, on_clique=None):
            release.wait(30)
            return original(graph, config, on_clique)

        server.scheduler.engine.run = gated
        try:
            client = ServiceClient(server.address, timeout=0.2)
            job_id = client.submit(barbell_graph(3))
            with pytest.raises(ServiceError, match="connection failed"):
                client.wait(job_id)  # server-side wait exceeds 0.2s
            with pytest.raises(ServiceError, match="broken"):
                client.ping()
        finally:
            release.set()
            server.scheduler.engine.run = original


class TestServerLifecycle:
    def test_external_scheduler_not_shut_down_with_server(self, g):
        with JobScheduler(workers=1) as sched:
            server = EnumerationServer(sched).start()
            with ServiceClient(server.address) as client:
                client.wait(client.submit(g, k_min=2), timeout=60)
            server.shutdown()
            # scheduler still accepts work after the server is gone
            job = sched.submit(JobSpec(graph=barbell_graph(3))).wait(30)
            assert job.result is not None

    def test_failed_bind_does_not_leak_worker_threads(self, server):
        """Regression: a bind failure in EnumerationServer must not
        leave an owned scheduler's freshly started workers running."""
        import threading

        host, port = server.address
        before = sum(
            1
            for t in threading.enumerate()
            if t.name.startswith("enum-worker")
        )
        with pytest.raises(OSError):
            EnumerationServer(host=host, port=port)
        after = sum(
            1
            for t in threading.enumerate()
            if t.name.startswith("enum-worker")
        )
        assert after == before

    def test_shutdown_without_start_returns_promptly(self):
        """Regression: BaseServer.shutdown() waits on an event only
        serve_forever sets — shutting down a never-started server must
        not block forever."""
        server = EnumerationServer()
        done = []
        import threading

        t = threading.Thread(
            target=lambda: (server.shutdown(), done.append(True))
        )
        t.start()
        t.join(timeout=10)
        assert done, "shutdown() hung on a never-started server"

    def test_shutdown_is_idempotent_and_concurrent_safe(self):
        import threading

        server = EnumerationServer().start()
        threads = [
            threading.Thread(target=server.shutdown) for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        server.shutdown()  # and once more from this thread

    def test_shutdown_op_stops_listener(self, g):
        server = EnumerationServer().start()
        with ServiceClient(server.address) as client:
            client.shutdown_server()
        # listener is gone: a fresh connection must fail
        import socket as socketlib
        import time

        deadline = time.time() + 10
        while time.time() < deadline:
            try:
                with socketlib.create_connection(
                    server.address, timeout=0.2
                ):
                    time.sleep(0.05)
            except OSError:
                return
        pytest.fail("server kept listening after shutdown op")
