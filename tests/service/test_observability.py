"""Service-plane observability: wire ops, scrapes, and the round trip.

The acceptance pin: after a job finishes, a metrics scrape reports
job/level/kernel counters that match the job's
:class:`~repro.core.clique_enumerator.EnumerationResult` **exactly** —
the fold copies the result's numbers verbatim, so any drift is a bug.
"""

from __future__ import annotations

import threading
import urllib.request

import pytest

from repro.core.generators import planted_clique
from repro.errors import ParameterError, ServiceError
from repro.engine.config import EnumerationConfig
from repro.obs import Observability, set_observability
from repro.obs.http import MetricsExporter
from repro.service.client import ServiceClient
from repro.service.jobs import JobSpec
from repro.service.scheduler import JobScheduler
from repro.service.server import EnumerationServer


@pytest.fixture
def plane():
    obs = Observability(metrics=True, trace=True, ring_size=512)
    previous = set_observability(obs)
    yield obs
    set_observability(previous)
    obs.close()


@pytest.fixture
def graph():
    return planted_clique(30, 6, p=0.25, seed=5)[0]


def metric_value(text: str, name: str, labels: str = "") -> float:
    """One sample value out of an exposition text, 0.0 when absent."""
    needle = f"{name}{labels} "
    for line in text.splitlines():
        if line.startswith(needle):
            return float(line[len(needle):])
    return 0.0


class TestRoundTrip:
    def test_scrape_matches_result_counters_exactly(self, plane, graph):
        """The acceptance criterion: scrape == EnumerationResult."""
        config = EnumerationConfig(
            k_min=3, compute_domain="wah", kernel="numpy",
            level_store="wah",
        )
        with JobScheduler(workers=1) as sched:
            job = sched.submit(JobSpec(graph=graph, config=config))
            job.wait(timeout=30)
            assert job.status.value == "done"
            text = sched.render_metrics()
        result = job.result
        c = result.counters
        assert metric_value(
            text, "repro_cliques_emitted_total"
        ) == c.maximal_emitted
        assert metric_value(
            text, "repro_cliques_generated_total"
        ) == c.cliques_generated
        assert metric_value(
            text, "repro_sublists_created_total"
        ) == c.sublists_created
        assert metric_value(
            text, "repro_job_levels_total"
        ) == c.levels
        # the wah run's kernel/codec telemetry round-trips too
        assert metric_value(
            text, "repro_kernel_word_ops_total"
        ) == result.domain_stats["kernel_word_ops"]
        assert metric_value(
            text, "repro_kernel_ands_total"
        ) == result.domain_stats["kernel_ands"]
        assert metric_value(
            text, "repro_decompressed_bytes_avoided_total"
        ) == result.domain_stats["decompressed_bytes_avoided"]
        # per-level candidates, one labelled sample per level
        for stats in result.level_stats:
            assert metric_value(
                text,
                "repro_level_candidates_total",
                labels=f'{{k="{stats.k}"}}',
            ) == stats.n_candidates
        assert metric_value(
            text, "repro_jobs_finished_total", labels='{status="done"}'
        ) == 1

    def test_two_jobs_accumulate(self, plane, graph):
        config = EnumerationConfig(k_min=3)
        with JobScheduler(workers=1, cache=None) as sched:
            jobs = [
                sched.submit(JobSpec(graph=graph, config=config))
                for _ in range(2)
            ]
            for job in jobs:
                job.wait(timeout=30)
            text = sched.render_metrics()
        emitted = sum(j.result.counters.maximal_emitted for j in jobs)
        assert metric_value(
            text, "repro_cliques_emitted_total"
        ) == emitted

    def test_cache_replay_folds_as_replay_not_work(self, plane, graph):
        config = EnumerationConfig(k_min=3)
        with JobScheduler(workers=1) as sched:
            first = sched.submit(JobSpec(graph=graph, config=config))
            first.wait(timeout=30)
            second = sched.submit(JobSpec(graph=graph, config=config))
            second.wait(timeout=30)
            assert second.cache_hit
            text = sched.render_metrics()
        # the replay adds no operation counters — only the replay tally
        assert metric_value(
            text, "repro_cliques_emitted_total"
        ) == first.result.counters.maximal_emitted
        assert metric_value(
            text, "repro_cache_replayed_jobs_total"
        ) == 1
        assert metric_value(
            text, "repro_jobs_finished_total", labels='{status="done"}'
        ) == 2


class TestWireOps:
    def test_ping_reports_uptime_and_active_jobs(self, plane, graph):
        with JobScheduler(workers=1) as sched:
            with EnumerationServer(sched) as server:
                with ServiceClient(server.address) as client:
                    pong = client.ping()
                    assert pong["pong"] is True
                    assert pong["uptime_seconds"] >= 0
                    assert pong["active_jobs"] == 0
                    assert pong["workers"] == 1
                    job_id = client.submit(
                        graph, EnumerationConfig(k_min=3)
                    )
                    client.wait(job_id)
                    assert client.ping()["active_jobs"] == 0

    def test_metrics_and_stats_round_trip_over_the_wire(
        self, plane, graph
    ):
        with JobScheduler(workers=2) as sched:
            with EnumerationServer(sched) as server:
                with ServiceClient(server.address) as client:
                    job_id = client.submit(
                        graph, EnumerationConfig(k_min=3)
                    )
                    job = client.wait(job_id)
                    text = client.metrics()
                    stats = client.stats()
        assert metric_value(
            text, "repro_cliques_emitted_total"
        ) == job["counters"]["maximal_emitted"]
        assert metric_value(text, "repro_workers") == 2
        assert stats["jobs"]["done"] == 1
        assert stats["uptime_seconds"] > 0

    def test_concurrent_scrapes_while_jobs_run(self, plane, graph):
        """stats/metrics/trace ops stay consistent under churn."""
        config = EnumerationConfig(k_min=3)
        errors: list[Exception] = []

        def scrape_loop(address, stop):
            try:
                with ServiceClient(address) as client:
                    while not stop.is_set():
                        client.stats()
                        text = client.metrics()
                        assert "# TYPE repro_workers gauge" in text
                        client.trace(limit=10)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        with JobScheduler(workers=2) as sched:
            with EnumerationServer(sched) as server:
                stop = threading.Event()
                scraper = threading.Thread(
                    target=scrape_loop, args=(server.address, stop)
                )
                scraper.start()
                with ServiceClient(server.address) as client:
                    ids = [
                        client.submit(graph, config, use_cache=False)
                        for _ in range(6)
                    ]
                    for job_id in ids:
                        client.wait(job_id)
                    final = client.metrics()
                stop.set()
                scraper.join()
        assert not errors
        assert metric_value(
            final, "repro_jobs_finished_total", labels='{status="done"}'
        ) == 6

    def test_trace_op_returns_job_spans(self, plane, graph):
        with JobScheduler(workers=1) as sched:
            with EnumerationServer(sched) as server:
                with ServiceClient(server.address) as client:
                    job_id = client.submit(
                        graph, EnumerationConfig(k_min=3)
                    )
                    client.wait(job_id)
                    records = client.trace()
        names = {r["name"] for r in records}
        assert "job" in names
        assert "level" in names

    def test_ops_refused_when_plane_disabled(self, graph):
        with JobScheduler(workers=1) as sched:
            with EnumerationServer(sched) as server:
                with ServiceClient(server.address) as client:
                    with pytest.raises(ServiceError):
                        client.metrics()
                    with pytest.raises(ServiceError):
                        client.trace()


class TestHttpExporter:
    def test_get_metrics_and_healthz(self, plane, graph):
        with JobScheduler(workers=1) as sched:
            job = sched.submit(
                JobSpec(graph=graph, config=EnumerationConfig(k_min=3))
            )
            job.wait(timeout=30)
            exporter = MetricsExporter(sched.render_metrics).start()
            try:
                host, port = exporter.address
                with urllib.request.urlopen(
                    f"http://{host}:{port}/metrics"
                ) as resp:
                    assert resp.status == 200
                    assert "version=0.0.4" in resp.headers["Content-Type"]
                    body = resp.read().decode()
                with urllib.request.urlopen(
                    f"http://{host}:{port}/healthz"
                ) as resp:
                    assert resp.read() == b"ok\n"
            finally:
                exporter.stop()
        assert metric_value(
            body, "repro_cliques_emitted_total"
        ) == job.result.counters.maximal_emitted

    def test_server_integrated_exporter(self, plane, graph):
        with JobScheduler(workers=1) as sched:
            with EnumerationServer(sched, metrics_port=0) as server:
                host, port = server.metrics_address
                body = urllib.request.urlopen(
                    f"http://{host}:{port}/metrics"
                ).read().decode()
                assert "repro_workers 1" in body

    def test_metrics_port_requires_enabled_plane(self):
        with JobScheduler(workers=1) as sched:
            with pytest.raises(ParameterError):
                EnumerationServer(sched, metrics_port=0)
        # the refused server must not have leaked a listener thread —
        # the scheduler context manager above still shuts down cleanly
