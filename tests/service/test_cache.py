"""Result-cache semantics: hits, misses, LRU eviction, invalidation."""

from __future__ import annotations

import pytest

from repro.core.counters import OpCounters
from repro.core.generators import complete_graph, erdos_renyi
from repro.core.graph_io import graph_fingerprint
from repro.engine import EnumerationConfig, EnumerationEngine
from repro.errors import ParameterError
from repro.service.cache import ResultCache

ENGINE = EnumerationEngine()


@pytest.fixture
def g():
    return erdos_renyi(25, 0.3, seed=4)


class TestHitMiss:
    def test_miss_then_hit(self, g):
        cache = ResultCache()
        cfg = EnumerationConfig(k_min=2)
        first, hit1 = cache.run(ENGINE, g, cfg)
        again, hit2 = cache.run(ENGINE, g, cfg)
        assert (hit1, hit2) == (False, True)
        assert again is first  # served without re-enumeration
        assert cache.stats() == {
            "entries": 1, "max_entries": 128,
            "hits": 1, "misses": 1, "evictions": 0,
        }

    def test_different_config_misses(self, g):
        cache = ResultCache()
        cache.run(ENGINE, g, EnumerationConfig(k_min=2))
        _, hit = cache.run(ENGINE, g, EnumerationConfig(k_min=3))
        assert not hit
        assert cache.hits == 0 and cache.misses == 2

    def test_equal_graph_rebuilt_elsewhere_hits(self, g):
        cache = ResultCache()
        cfg = EnumerationConfig(k_min=2)
        cache.run(ENGINE, g, cfg)
        _, hit = cache.run(ENGINE, g.copy(), cfg)
        assert hit  # content-keyed, not identity-keyed

    def test_fingerprint_invalidation_after_mutation(self, g):
        cache = ResultCache()
        cfg = EnumerationConfig(k_min=2)
        cache.run(ENGINE, g, cfg)
        mutated = g.copy()
        u = 0
        v = next(x for x in range(1, g.n) if not g.has_edge(u, x))
        mutated.add_edge(u, v)
        result, hit = cache.run(ENGINE, mutated, cfg)
        assert not hit  # the stale entry must not be served
        assert sorted(result.cliques) == sorted(
            ENGINE.run(mutated, cfg).cliques
        )

    def test_fingerprint_restored_after_reverting_mutation(self, g):
        cfg = EnumerationConfig(k_min=2)
        fp = graph_fingerprint(g)
        mutated = g.copy()
        v = next(x for x in range(1, g.n) if not g.has_edge(0, x))
        mutated.add_edge(0, v)
        assert graph_fingerprint(mutated) != fp
        mutated.remove_edge(0, v)
        assert graph_fingerprint(mutated) == fp


class TestEviction:
    def test_lru_bound_enforced(self):
        cache = ResultCache(max_entries=2)
        cfg = EnumerationConfig(k_min=2)
        graphs = [complete_graph(n) for n in (3, 4, 5)]
        for graph in graphs:
            cache.run(ENGINE, graph, cfg)
        assert len(cache) == 2
        assert cache.evictions == 1
        # oldest (K3) was evicted, newest two still hit
        _, hit3 = cache.run(ENGINE, graphs[0], cfg)
        assert not hit3
        _, hit5 = cache.run(ENGINE, graphs[2], cfg)
        assert hit5

    def test_get_refreshes_recency(self):
        cache = ResultCache(max_entries=2)
        cfg = EnumerationConfig(k_min=2)
        g3, g4, g5 = (complete_graph(n) for n in (3, 4, 5))
        cache.run(ENGINE, g3, cfg)
        cache.run(ENGINE, g4, cfg)
        cache.run(ENGINE, g3, cfg)  # touch K3 → K4 becomes LRU
        cache.run(ENGINE, g5, cfg)  # evicts K4
        _, hit3 = cache.run(ENGINE, g3, cfg)
        assert hit3
        _, hit4 = cache.run(ENGINE, g4, cfg)
        assert not hit4

    def test_invalid_bound_rejected(self):
        with pytest.raises(ParameterError):
            ResultCache(max_entries=0)


class TestCounters:
    def test_fold_into_op_counters(self, g):
        cache = ResultCache()
        cfg = EnumerationConfig(k_min=2)
        cache.run(ENGINE, g, cfg)
        cache.run(ENGINE, g, cfg)
        counters = OpCounters()
        cache.fold_into(counters)
        assert counters.extra["cache_hits"] == 1
        assert counters.extra["cache_misses"] == 1
        assert counters.extra["cache_evictions"] == 0
        snapshot = counters.snapshot()
        assert snapshot["cache_hits"] == 1

    def test_clear_keeps_tallies(self, g):
        cache = ResultCache()
        cache.run(ENGINE, g, EnumerationConfig(k_min=2))
        cache.clear()
        assert len(cache) == 0
        assert cache.misses == 1
        _, hit = cache.run(ENGINE, g, EnumerationConfig(k_min=2))
        assert not hit
