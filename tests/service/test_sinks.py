"""Sink subsystem tests: spec parsing, accounting, backend equivalence."""

from __future__ import annotations

import json

import pytest

from repro.core.generators import erdos_renyi, overlapping_cliques
from repro.engine import EnumerationConfig, EnumerationEngine
from repro.errors import ParameterError
from repro.service.sinks import (
    CollectSink,
    CountSink,
    JsonlSink,
    TopKSink,
    make_sink,
    validate_sink_spec,
)

ENGINE = EnumerationEngine()

#: the streaming sinks are substrate-independent; two backends with
#: different storage policies are enough to prove it.
BACKENDS = ("incore", "ooc")


@pytest.fixture(scope="module")
def workload():
    g = overlapping_cliques(35, [7, 6, 5], 3, seed=8)[0]
    reference = ENGINE.run(g, EnumerationConfig(k_min=2))
    return g, sorted(reference.cliques)


class TestMakeSink:
    def test_collect(self):
        assert isinstance(make_sink("collect"), CollectSink)

    def test_count(self):
        assert isinstance(make_sink("count"), CountSink)

    def test_top_k(self):
        sink = make_sink("top_k:5")
        assert isinstance(sink, TopKSink)
        assert sink.k == 5

    def test_jsonl(self, tmp_path):
        sink = make_sink(f"jsonl:{tmp_path / 'out.jsonl'}")
        assert isinstance(sink, JsonlSink)

    @pytest.mark.parametrize(
        "spec",
        ["", "bogus", "top_k", "top_k:", "top_k:x", "top_k:0",
         "jsonl", "jsonl:", "collect:arg", "count:3"],
    )
    def test_rejects_bad_specs(self, spec):
        with pytest.raises(ParameterError):
            make_sink(spec)

    def test_validate_returns_spec(self):
        assert validate_sink_spec("top_k:3") == "top_k:3"

    def test_validate_creates_no_file(self, tmp_path):
        path = tmp_path / "never.jsonl"
        validate_sink_spec(f"jsonl:{path}")
        assert not path.exists()


class TestAccounting:
    def test_uniform_summary_core(self):
        sink = CountSink()
        for c in [(0, 1), (0, 1, 2), (3, 4, 5)]:
            sink(c)
        summary = sink.summary()
        assert summary["cliques"] == 3
        assert summary["max_size"] == 3
        assert summary["by_size"] == {"2": 1, "3": 2}

    def test_top_k_keeps_largest(self):
        sink = TopKSink(2)
        for c in [(0, 1), (0, 1, 2), (5, 6), (1, 2, 3, 4)]:
            sink(c)
        assert sink.top == [(1, 2, 3, 4), (0, 1, 2)]
        assert sink.count == 4  # accounting sees everything

    def test_jsonl_streams_and_counts_bytes(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with JsonlSink(path) as sink:
            sink((0, 1, 2))
            sink((3, 4))
        lines = path.read_text().splitlines()
        assert [json.loads(l) for l in lines] == [[0, 1, 2], [3, 4]]
        assert sink.bytes_written == len(path.read_bytes())

    def test_jsonl_empty_run_leaves_empty_file(self, tmp_path):
        path = tmp_path / "out.jsonl"
        sink = JsonlSink(path)
        sink.close()
        assert path.read_text() == ""
        assert list(tmp_path.glob("*.partial")) == []

    def test_jsonl_empty_close_is_atomic(self, tmp_path, monkeypatch):
        """Regression: a zero-emission close used to write the target
        directly (path.write_text), bypassing the documented .partial +
        os.replace guarantee — an interrupt mid-close could leave the
        previous target content truncated.  The empty case must go
        through the same temp-file rename."""
        import repro.service.sinks as sinks_mod

        path = tmp_path / "out.jsonl"
        path.write_text('[1,2]\n')  # a previous good run

        sink = JsonlSink(path)

        def exploding_replace(src, dst):
            raise OSError("interrupted mid-close")

        monkeypatch.setattr(sinks_mod.os, "replace", exploding_replace)
        with pytest.raises(OSError, match="interrupted"):
            sink.close()
        # the previous run's output is intact, byte for byte
        assert path.read_text() == '[1,2]\n'
        assert not sink.closed
        # abort after the failed close still cleans the .partial debris
        monkeypatch.undo()
        sink.abort()
        assert list(tmp_path.glob("*.partial")) == []
        assert path.read_text() == '[1,2]\n'

    def test_jsonl_empty_close_replaces_previous_content(self, tmp_path):
        """A *successful* empty run atomically replaces the previous
        output with a well-formed empty file."""
        path = tmp_path / "out.jsonl"
        path.write_text('[1,2]\n')
        sink = JsonlSink(path)
        sink.close()
        assert path.read_text() == ""
        assert list(tmp_path.glob("*.partial")) == []

    def test_jsonl_abort_preserves_previous_output(self, tmp_path):
        """Regression: a zero-emission failed run must not truncate a
        previous successful run's file."""
        path = tmp_path / "out.jsonl"
        good = JsonlSink(path)
        good((0, 1, 2))
        good.close()
        failed = JsonlSink(path)
        failed.abort()  # failed before emitting anything
        assert failed.closed
        assert json.loads(path.read_text()) == [0, 1, 2]

    def test_jsonl_abort_after_partial_emission_preserves_target(
        self, tmp_path
    ):
        """Regression: a run that fails *after* emitting must not leave
        partial debris at the target — writes go to a temp file that
        only replaces the target on a successful close."""
        path = tmp_path / "out.jsonl"
        path.write_text("[7]\n")  # a previous good run
        sink = JsonlSink(path)
        sink((0, 1))
        sink.abort()
        assert sink.closed
        assert path.read_text() == "[7]\n"
        assert list(tmp_path.glob("*.partial")) == []

    def test_jsonl_failed_rename_then_abort_cleans_partial(self, tmp_path):
        """Regression: when close()'s rename fails (target is a
        directory), the follow-up abort() must still remove the
        .partial temp file."""
        target = tmp_path / "taken"
        target.mkdir()
        sink = JsonlSink(target)
        sink((0, 1))
        with pytest.raises(OSError):
            sink.close()
        sink.abort()
        assert list(tmp_path.glob("*.partial")) == []

    def test_context_manager_aborts_on_exception(self, tmp_path):
        """Regression: an exception inside the with-body is a failed
        run — __exit__ must abort, not finalize partial output over a
        previous good file."""
        path = tmp_path / "out.jsonl"
        path.write_text("[1,2,3]\n[4,5,6]\n")
        with pytest.raises(RuntimeError):
            with JsonlSink(path) as sink:
                sink((0, 1))
                raise RuntimeError("boom")
        assert path.read_text() == "[1,2,3]\n[4,5,6]\n"
        assert list(tmp_path.glob("*.partial")) == []

    def test_jsonl_close_replaces_target_atomically(self, tmp_path):
        path = tmp_path / "out.jsonl"
        path.write_text("[7]\n")
        sink = JsonlSink(path)
        sink((0, 1, 2))
        assert path.read_text() == "[7]\n"  # old content until close
        sink.close()
        assert path.read_text() == "[0,1,2]\n"
        assert list(tmp_path.glob("*.partial")) == []


class TestBackendEquivalence:
    """Each sink × two backends asserting identical counts."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("spec", ["collect", "count", "top_k:4"])
    def test_sink_counts_match_reference(self, backend, spec, workload):
        g, reference = workload
        sink = make_sink(spec)
        ENGINE.run(
            g, EnumerationConfig(backend=backend, k_min=2), on_clique=sink
        )
        sink.close()
        assert sink.count == len(reference)
        assert sum(sink.by_size.values()) == len(reference)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_jsonl_output_matches_collect(self, backend, workload, tmp_path):
        g, reference = workload
        path = tmp_path / f"{backend}.jsonl"
        sink = JsonlSink(path)
        ENGINE.run(
            g, EnumerationConfig(backend=backend, k_min=2), on_clique=sink
        )
        sink.close()
        on_disk = sorted(
            tuple(json.loads(line))
            for line in path.read_text().splitlines()
        )
        assert on_disk == reference

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_top_k_identical_across_backends(self, backend, workload):
        g, reference = workload
        sink = make_sink("top_k:3")
        ENGINE.run(
            g, EnumerationConfig(backend=backend, k_min=2), on_clique=sink
        )
        want = sorted(reference, key=lambda c: (len(c), c), reverse=True)[:3]
        assert sink.top == want


class TestEngineSinkPlumbing:
    def test_run_with_sink_closes_and_folds_summary(self):
        g = erdos_renyi(20, 0.3, seed=6)
        sink = CountSink()
        res = ENGINE.run_with_sink(g, EnumerationConfig(k_min=2), sink)
        assert sink.closed
        assert res.cliques == []  # streamed, not collected
        assert res.counters.extra["sink_cliques"] == sink.count
        assert res.counters.extra["sink_max_size"] == sink.max_size

    def test_run_with_sink_closes_on_error(self):
        g = erdos_renyi(25, 0.5, seed=2)
        sink = CountSink()
        from repro.errors import BudgetExceeded

        with pytest.raises(BudgetExceeded):
            ENGINE.run_with_sink(
                g, EnumerationConfig(k_min=2, max_cliques=2), sink
            )
        assert sink.closed

    def test_run_with_sink_error_aborts_jsonl_without_truncating(
        self, tmp_path
    ):
        from repro.errors import BudgetExceeded

        path = tmp_path / "out.jsonl"
        path.write_text("[9,9,9]\n")  # a previous good run
        g = erdos_renyi(10, 0.1, seed=1)
        sink = JsonlSink(path)
        with pytest.raises(BudgetExceeded):
            # budget of 0 trips on the very first emission, before the
            # sink's lazy open — close() here would truncate the file
            ENGINE.run_with_sink(
                g, EnumerationConfig(k_min=2, max_cliques=0), sink
            )
        assert path.read_text() == "[9,9,9]\n"

    def test_run_with_sink_close_failure_cleans_partial(self, tmp_path):
        """Regression: when the sink's close() itself fails (jsonl
        rename target is a directory), the engine must abort the sink
        rather than leak its .partial temp file."""
        target = tmp_path / "taken"
        target.mkdir()
        g = erdos_renyi(15, 0.3, seed=3)
        sink = JsonlSink(target)
        with pytest.raises(OSError):
            ENGINE.run_with_sink(g, EnumerationConfig(k_min=2), sink)
        assert sink.closed
        assert list(tmp_path.glob("*.partial")) == []

    def test_plain_callable_still_accepted(self):
        g = erdos_renyi(15, 0.3, seed=3)
        seen: list[tuple[int, ...]] = []
        res = ENGINE.run_with_sink(g, EnumerationConfig(k_min=2), seen.append)
        assert res.cliques == []
        assert seen
