"""Memory-budget admission control: prediction, deferral, auto stores.

The invariants pinned here are the scheduler's two admission promises:
jobs never run concurrently over the budget, and an over-budget
singleton still runs alone (serialisation, never deadlock) — plus the
``level_store="auto"`` resolution that rides the same prediction.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.generators import complete_graph, erdos_renyi
from repro.core.memory_model import predict_profile, seed_sublist_count
from repro.engine import LEVEL_STORES, EnumerationConfig, EnumerationEngine
from repro.errors import ParameterError
from repro.service import JobScheduler, JobSpec, JobStatus

ENGINE = EnumerationEngine()


def _graph(seed: int = 2):
    return erdos_renyi(30, 0.3, seed=seed)


def _predicted_cost(g, config=None) -> int:
    """The admission charge a submission of (g, config) gets."""
    config = config or EnumerationConfig()
    seeds = seed_sublist_count(g) if config.k_min <= 2 else None
    profile = predict_profile(g.n, g.m, config.k_min, seeds,
                              k_max=config.k_max)
    return profile.peak_bytes(config.level_store or "memory")


class _ConcurrencyProbe:
    """Wraps an engine's run() to record the max concurrent runs."""

    def __init__(self, engine):
        self._original = engine.run
        self._lock = threading.Lock()
        self.active = 0
        self.max_active = 0

    def __call__(self, graph, config=None, on_clique=None):
        with self._lock:
            self.active += 1
            self.max_active = max(self.max_active, self.active)
        try:
            time.sleep(0.01)  # widen the overlap window
            return self._original(graph, config, on_clique)
        finally:
            with self._lock:
                self.active -= 1


class TestPrediction:
    def test_predicted_peak_recorded_and_bounds_measured(self):
        g = _graph()
        with JobScheduler(workers=1) as sched:
            job = sched.submit(JobSpec(graph=g)).wait(30)
        assert job.status is JobStatus.DONE
        assert job.predicted_peak_bytes is not None
        assert job.predicted_peak_bytes > 0
        payload = job.to_dict()
        assert payload["predicted_peak_bytes"] == job.predicted_peak_bytes
        assert payload["measured_peak_bytes"] <= job.predicted_peak_bytes

    def test_unloadable_graph_predicts_none_and_fails_at_dispatch(self):
        with JobScheduler(workers=1) as sched:
            job = sched.submit(
                JobSpec(graph="/nonexistent/g.json")
            ).wait(30)
        assert job.predicted_peak_bytes is None
        assert job.status is JobStatus.FAILED
        assert "nonexistent" in job.error

    def test_negative_budget_rejected(self):
        with pytest.raises(ParameterError, match="memory_budget_bytes"):
            JobScheduler(workers=1, memory_budget_bytes=-1)


class TestAdmission:
    def test_budget_below_two_jobs_serialises_execution(self):
        g = _graph()
        cost = _predicted_cost(g)
        # one job fits, two do not: execution must serialise
        with JobScheduler(
            workers=4, memory_budget_bytes=cost + cost // 2
        ) as sched:
            probe = _ConcurrencyProbe(sched.engine)
            sched.engine.run = probe
            jobs = [
                sched.submit(JobSpec(graph=g, use_cache=False))
                for _ in range(6)
            ]
            sched.drain(60)
        assert all(j.status is JobStatus.DONE for j in jobs)
        assert probe.max_active == 1
        stats = sched.stats()
        assert stats["admission"]["admitted_total"] == 6
        assert stats["admission"]["deferred_total"] >= 1
        assert stats["admission"]["admitted_bytes"] == 0

    def test_over_budget_singleton_runs_alone_not_deadlock(self):
        g = _graph()
        # every job is bigger than the whole budget; each must still
        # run (alone) instead of starving the queue
        with JobScheduler(workers=2, memory_budget_bytes=1) as sched:
            probe = _ConcurrencyProbe(sched.engine)
            sched.engine.run = probe
            jobs = [
                sched.submit(JobSpec(graph=g, use_cache=False))
                for _ in range(3)
            ]
            sched.drain(60)
        assert all(j.status is JobStatus.DONE for j in jobs)
        assert probe.max_active == 1

    def test_zero_budget_is_legal_and_serialises(self):
        g = _graph()
        with JobScheduler(workers=2, memory_budget_bytes=0) as sched:
            jobs = [
                sched.submit(JobSpec(graph=g, use_cache=False))
                for _ in range(2)
            ]
            sched.drain(60)
        assert all(j.status is JobStatus.DONE for j in jobs)

    def test_no_budget_never_defers(self):
        g = _graph()
        with JobScheduler(workers=2) as sched:
            for _ in range(4):
                sched.submit(JobSpec(graph=g, use_cache=False))
            sched.drain(60)
            stats = sched.stats()
        assert stats["admission"]["budget_bytes"] is None
        assert stats["admission"]["admitted_total"] == 4
        assert stats["admission"]["deferred_total"] == 0

    def test_deferred_job_counts_as_queued_in_stats(self):
        g = _graph()
        cost = _predicted_cost(g)
        with JobScheduler(
            workers=2, memory_budget_bytes=cost
        ) as sched:
            release = threading.Event()
            started = threading.Event()
            original = sched.engine.run

            def gated(graph, config=None, on_clique=None):
                started.set()
                release.wait(30)
                return original(graph, config, on_clique)

            sched.engine.run = gated
            blocker = sched.submit(JobSpec(graph=g, use_cache=False))
            assert started.wait(30)
            deferred = sched.submit(JobSpec(graph=g, use_cache=False))
            # wait for the idle worker to pull and defer the second job
            deadline = time.monotonic() + 10
            while (
                sched.stats()["admission"]["deferred_total"] == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            stats = sched.stats()
            assert stats["admission"]["deferred_total"] >= 1
            assert stats["queued"] == 1  # the deferred job is pending
            assert stats["jobs"]["running"] == 1
            sched.engine.run = original
            release.set()
            sched.drain(30)
        assert blocker.status is JobStatus.DONE
        assert deferred.status is JobStatus.DONE

    def test_cancel_while_admitted_releases_budget(self):
        g = _graph()
        cost = _predicted_cost(g)
        with JobScheduler(
            workers=2, memory_budget_bytes=cost
        ) as sched:
            release = threading.Event()
            started = threading.Event()
            original = sched.engine.run

            def gated(graph, config=None, on_clique=None):
                started.set()
                release.wait(30)
                return original(graph, config, on_clique)

            sched.engine.run = gated
            victim = sched.submit(JobSpec(graph=g, use_cache=False))
            assert started.wait(30)
            assert (
                sched.stats()["admission"]["admitted_bytes"] == cost
            )
            sched.engine.run = original
            follower = sched.submit(JobSpec(graph=g, use_cache=False))
            assert sched.cancel(victim.id)  # cooperative: flag only
            release.set()
            sched.drain(30)
            stats = sched.stats()
        assert victim.status is JobStatus.CANCELLED
        assert follower.status is JobStatus.DONE
        assert stats["admission"]["admitted_bytes"] == 0

    def test_deferred_jobs_complete_on_draining_shutdown(self):
        g = _graph()
        cost = _predicted_cost(g)
        sched = JobScheduler(workers=2, memory_budget_bytes=cost)
        jobs = [
            sched.submit(JobSpec(graph=g, use_cache=False))
            for _ in range(4)
        ]
        # deferred entries sort ahead of the shutdown sentinels, so a
        # draining shutdown must finish them, never strand them
        sched.shutdown(wait=True)
        assert all(j.status is JobStatus.DONE for j in jobs)


class TestAutoStore:
    def test_auto_resolves_to_wah_under_wah_sized_budget(self):
        g = _graph()
        config = EnumerationConfig(level_store="auto")
        seeds = seed_sublist_count(g)
        profile = predict_profile(g.n, g.m, config.k_min, seeds,
                                  k_max=config.k_max)
        budget = profile.peak_bytes("wah")
        assert budget < profile.peak_bytes("memory")
        with JobScheduler(
            workers=1, memory_budget_bytes=budget
        ) as sched:
            job = sched.submit(JobSpec(graph=g, config=config)).wait(30)
        assert job.status is JobStatus.DONE
        assert job.resolved_config.level_store == "wah"
        assert job.to_dict()["level_store"] == "wah"
        # the admission charge is the *resolved* substrate's estimate
        assert job.predicted_peak_bytes == budget
        # byte-identical cliques against the uncompressed substrate
        reference = ENGINE.run(
            g, EnumerationConfig(level_store="memory")
        )
        assert sorted(job.result.cliques) == sorted(reference.cliques)

    def test_auto_resolves_to_disk_when_nothing_fits(self):
        g = _graph()
        config = EnumerationConfig(level_store="auto")
        with JobScheduler(workers=1, memory_budget_bytes=1) as sched:
            job = sched.submit(JobSpec(graph=g, config=config)).wait(30)
        assert job.status is JobStatus.DONE
        assert job.resolved_config.level_store == "disk"
        reference = ENGINE.run(
            g, EnumerationConfig(level_store="memory")
        )
        assert sorted(job.result.cliques) == sorted(reference.cliques)

    def test_auto_without_budget_resolves_to_some_concrete_store(self):
        # no scheduler budget: resolution falls back to the machine's
        # available memory — whatever it picks must be concrete
        g = complete_graph(6)
        config = EnumerationConfig(level_store="auto")
        with JobScheduler(workers=1) as sched:
            job = sched.submit(JobSpec(graph=g, config=config)).wait(30)
        assert job.status is JobStatus.DONE
        assert job.resolved_config.level_store in LEVEL_STORES
        assert job.result.cliques == [(0, 1, 2, 3, 4, 5)]

    def test_auto_jobs_cache_on_resolved_substrate(self):
        # two identical auto submissions: the second must hit the
        # cache entry keyed by the *resolved* config
        g = _graph()
        config = EnumerationConfig(level_store="auto")
        with JobScheduler(workers=1) as sched:
            first = sched.submit(JobSpec(graph=g, config=config)).wait(30)
            second = sched.submit(JobSpec(graph=g, config=config)).wait(30)
        assert first.status is JobStatus.DONE
        assert not first.cache_hit
        assert second.cache_hit
        assert sorted(second.result.cliques) == sorted(
            first.result.cliques
        )
