"""End-to-end integration tests across subsystem boundaries.

Each scenario chains several subpackages the way a downstream user would:
expression pipeline into enumeration into decomposition; noisy PPI into
cleaning into complex discovery; traces into machine simulation into
metrics; file I/O round trips through the CLI-level API.
"""

from __future__ import annotations

import pytest

from repro.bio.coexpression import coexpression_pipeline
from repro.bio.expression import ModuleSpec, synthetic_expression
from repro.bio.ppi import clean_by_voting, score_recovery, simulate_replicates
from repro.bio.threshold_selection import select_threshold, threshold_sweep
from repro.core import graph_io
from repro.core.clique_enumerator import enumerate_maximal_cliques
from repro.core.decomposition import paraclique_decomposition
from repro.core.generators import planted_partition
from repro.core.kose import kose_enumerate
from repro.core.maximum_clique import maximum_clique, maximum_clique_size
from repro.core.out_of_core import enumerate_maximal_cliques_ooc
from repro.core.stats import summarize
from repro.parallel.machine import MachineSpec
from repro.parallel.metrics import absolute_speedup, load_balance_stats
from repro.parallel.mp_backend import enumerate_maximal_cliques_mp
from repro.parallel.parallel_enumerator import (
    record_trace,
    simulate_processor_sweep,
)


class TestExpressionToModules:
    """Microarray -> correlation graph -> cliques -> modules."""

    @pytest.fixture(scope="class")
    def pipeline(self):
        ds = synthetic_expression(
            150,
            50,
            [ModuleSpec(11, 0.97), ModuleSpec(8, 0.95)],
            seed=1001,
        )
        res = coexpression_pipeline(ds, threshold=0.75)
        return ds, res

    def test_modules_survive_the_whole_chain(self, pipeline):
        ds, res = pipeline
        decomp = paraclique_decomposition(res.graph, min_size=5)
        module_sets = [set(m.vertices) for m in decomp.modules]
        for planted in ds.modules:
            overlap = max(
                (len(set(planted) & s) / len(planted) for s in module_sets),
                default=0.0,
            )
            assert overlap >= 0.8, f"module {planted} lost in the chain"

    def test_threshold_selection_consistent_with_pipeline(self, pipeline):
        ds, res = pipeline
        sweep = threshold_sweep(res.correlation, [0.9, 0.8, 0.7])
        chosen = select_threshold(sweep)
        # the chosen cutoff retains the biggest planted module's clique
        assert chosen.max_clique >= 10

    def test_enumeration_backends_agree_on_pipeline_graph(self, pipeline):
        _, res = pipeline
        g = res.graph
        ref = sorted(enumerate_maximal_cliques(g, k_min=2).cliques)
        assert sorted(kose_enumerate(g, k_min=2).cliques) == ref
        assert sorted(
            enumerate_maximal_cliques_ooc(g, k_min=2).cliques
        ) == ref
        assert sorted(
            enumerate_maximal_cliques_mp(g, k_min=2, n_workers=2).cliques
        ) == ref


class TestPpiToComplexes:
    """Noisy replicates -> voting -> clique complexes."""

    def test_cleaning_then_discovery(self):
        truth, complexes = planted_partition(
            120, [9, 8, 7], p_in=1.0, p_out=0.005, seed=55
        )
        reps = simulate_replicates(truth, 5, 0.01, 0.1, seed=56)
        cleaned = clean_by_voting(reps, 3)
        assert score_recovery(truth, cleaned).f1 > 0.9
        found = enumerate_maximal_cliques(cleaned, k_min=5)
        clique_sets = [set(c) for c in found.cliques]
        for cx in complexes:
            best = max(
                (len(set(cx) & s) / len(cx) for s in clique_sets),
                default=0.0,
            )
            assert best >= 0.7


class TestTraceToMetrics:
    """Enumeration trace -> machine sweep -> published metrics."""

    def test_full_parallel_analysis_chain(self):
        g, _ = planted_partition(
            100, [10, 9, 8], p_in=0.95, p_out=0.03, seed=77
        )
        trace = record_trace(g, k_min=3)
        seq = enumerate_maximal_cliques(g, k_min=3)
        assert sorted(trace.cliques) == sorted(seq.cliques)
        spec = MachineSpec(n_processors=1, seconds_per_work_unit=1e-6)
        runs = simulate_processor_sweep(trace, spec, [1, 2, 4, 8])
        speedups = absolute_speedup(runs)
        assert speedups[8] > speedups[2] > 1.0
        balance = load_balance_stats(runs[8])
        assert balance.std_over_mean <= 0.10


class TestFileRoundTripToAnalysis:
    """Save -> load -> analyse gives identical results."""

    def test_formats_preserve_analysis(self, tmp_path):
        g, _ = planted_partition(
            60, [8, 7], p_in=0.95, p_out=0.02, seed=88
        )
        omega = maximum_clique_size(g)
        cliques = sorted(enumerate_maximal_cliques(g, k_min=2).cliques)
        summary = summarize(g)
        for ext in (".json", ".dimacs", ".edges"):
            path = tmp_path / f"g{ext}"
            graph_io.save(g, path)
            back = graph_io.load(path)
            assert back == g
            assert maximum_clique_size(back) == omega
            assert sorted(
                enumerate_maximal_cliques(back, k_min=2).cliques
            ) == cliques
            assert summarize(back) == summary


class TestMaximumCliqueConsistency:
    """Every maximum-clique route agrees with the enumerator's largest."""

    def test_three_routes_agree(self):
        g, _ = planted_partition(
            40, [9, 7], p_in=0.95, p_out=0.05, seed=99
        )
        enum_max = enumerate_maximal_cliques(g, k_min=2).max_clique_size()
        bb = len(maximum_clique(g))
        assert bb == enum_max
        from repro.core.maximum_clique import (
            maximum_clique_via_vertex_cover,
        )

        # complement-VC route on a subgraph (kept small: exponential in
        # n - omega)
        sub, _ = g.subgraph(range(16))
        assert len(maximum_clique_via_vertex_cover(sub)) == len(
            maximum_clique(sub)
        )
