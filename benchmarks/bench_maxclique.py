"""Support benchmark: maximum clique on the three evaluation graphs.

Paper (Section 3): "we found the maximum clique size to be 17, 110, and
28 for each graph, respectively."  The scaled analogs pin 17 / 22 / 14
(DESIGN.md documents the k-axis scaling).
"""

from __future__ import annotations

from repro.core.maximum_clique import maximum_clique


def bench_maxclique_brain_sparse(benchmark, brain_sparse):
    """Max clique on the sparse brain analog (paper: 17; scaled: 17)."""
    clique = benchmark(maximum_clique, brain_sparse.graph)
    assert len(clique) == 17
    benchmark.extra_info["max_clique"] = len(clique)
    benchmark.extra_info["paper_value"] = 17


def bench_maxclique_myogenic(benchmark, myogenic):
    """Max clique on the myogenic analog (paper: 28; scaled: 14)."""
    clique = benchmark(maximum_clique, myogenic.graph)
    assert len(clique) == 14
    benchmark.extra_info["max_clique"] = len(clique)
    benchmark.extra_info["paper_value"] = 28


def bench_maxclique_brain_dense(benchmark, brain_dense):
    """Max clique on the dense brain analog (paper: 110; scaled: 22)."""
    clique = benchmark(maximum_clique, brain_dense.graph)
    assert len(clique) == 22
    benchmark.extra_info["max_clique"] = len(clique)
    benchmark.extra_info["paper_value"] = 110
