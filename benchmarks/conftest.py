"""Shared session-scoped fixtures for the benchmark harness.

Workloads and traces are expensive to build; they are cached for the whole
benchmark session so each bench measures only its own target.
"""

from __future__ import annotations

import pytest

from repro.experiments.calibration import calibrated_spec, myogenic_trace
from repro.experiments.workloads import (
    mouse_brain_dense,
    mouse_brain_sparse,
    myogenic_like,
)


@pytest.fixture(scope="session")
def brain_sparse():
    return mouse_brain_sparse()


@pytest.fixture(scope="session")
def brain_dense():
    return mouse_brain_dense()


@pytest.fixture(scope="session")
def myogenic():
    return myogenic_like()


@pytest.fixture(scope="session")
def spec():
    return calibrated_spec()


@pytest.fixture(scope="session")
def traces():
    """Paper Init_K -> cached trace of the myogenic workload."""
    return {k: myogenic_trace(k) for k in (18, 19, 20, 3)}
