"""Wall-clock regression gate for the backend matrix.

Companion to ``check_wah_baseline.py`` (which gates output equality and
the compression ratio): this script gates *speed*.  It enumerates the
same committed sparse Figure-9-style workload on every execution
backend, records the median wall-clock of ``REPEATS`` runs each, and
derives each backend's **ratio to the in-core median measured in the
same process on the same machine**.

The gate compares ratios, not seconds: a CI runner may be uniformly
faster or slower than the machine that wrote the baseline, but the
*relative* cost of ``ooc`` vs ``incore`` vs ``threads`` is a property
of the code.  A backend fails only when its measured ratio exceeds the
committed ratio by :data:`TOLERANCE` (generous at 2.5x, so scheduler
jitter never trips it — any trip is a real regression, which is what
makes this a non-flaky smoke gate).  Every run's clique digest is also
checked against ``incore``, so the speed gate doubles as an
equivalence smoke test.

Usage::

    PYTHONPATH=src python benchmarks/check_speed_baseline.py \
        --check benchmarks/baselines/engines_speed.json
    PYTHONPATH=src python benchmarks/check_speed_baseline.py \
        --write benchmarks/baselines/engines_speed.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from check_wah_baseline import WORKLOAD  # noqa: E402 — shared workload

from repro.core.generators import overlapping_cliques  # noqa: E402
from repro.engine import EnumerationConfig, EnumerationEngine  # noqa: E402

#: measured-over-baseline ratio slack before the gate trips.
TOLERANCE = 2.5

#: median-of-N runs per backend (small N keeps CI cheap; the generous
#: tolerance absorbs the residual noise).
REPEATS = 3

#: levels whose *incore* median is below this are excluded from the
#: per-level ratio gate: a fraction of a millisecond is scheduler noise
#: on any host, and a ratio of two noise readings gates nothing.
LEVEL_NOISE_FLOOR_SECONDS = 0.002

#: the matrix: label -> config kwargs.  ``threads``/``multiprocess``
#: run at 2 workers so the parallel plumbing (pool, stealing, pipes) is
#: on the measured path whatever the host's core count.
BACKENDS = {
    "incore": {"backend": "incore"},
    "bitscan": {"backend": "bitscan"},
    "ooc": {"backend": "ooc"},
    # the default ("auto") wah store now runs the compressed-domain
    # kernels; the +bitset row pins the PR-3 at-rest path so both codec
    # paths stay speed-gated
    "incore+wah": {"backend": "incore", "level_store": "wah"},
    "incore+wah+bitset": {
        "backend": "incore",
        "level_store": "wah",
        "compute_domain": "bitset",
    },
    "threads": {"backend": "threads", "jobs": 2},
    "multiprocess": {"backend": "multiprocess", "jobs": 2},
}


def _clique_digest(cliques) -> str:
    payload = "\n".join(
        " ".join(map(str, c)) for c in sorted(cliques)
    ).encode()
    return hashlib.sha256(payload).hexdigest()


def measure() -> dict:
    """Run the matrix; collect medians, ratios, and the digest check."""
    g, _ = overlapping_cliques(
        WORKLOAD["n"],
        WORKLOAD["clique_sizes"],
        WORKLOAD["overlap"],
        p=WORKLOAD["p"],
        seed=WORKLOAD["seed"],
    )
    engine = EnumerationEngine()
    k_min = WORKLOAD["k_min"]

    medians: dict[str, float] = {}
    level_medians: dict[str, list[float]] = {}
    digests: dict[str, str] = {}
    for label, kwargs in BACKENDS.items():
        config = EnumerationConfig(k_min=k_min, **kwargs)
        times = []
        level_times: list[list[float]] = []
        for _ in range(REPEATS):
            t0 = time.perf_counter()
            result = engine.run(g, config)
            times.append(time.perf_counter() - t0)
            level_times.append(list(result.level_seconds))
        medians[label] = statistics.median(times)
        # element-wise median across the repeats — the per-level noise
        # one slow run injects must not survive into the gated figure
        level_medians[label] = [
            statistics.median(run[i] for run in level_times)
            for i in range(len(level_times[0]))
        ]
        digests[label] = _clique_digest(result.cliques)

    reference = digests["incore"]
    mismatched = sorted(
        label for label, d in digests.items() if d != reference
    )
    if mismatched:
        raise SystemExit(
            f"clique sets diverged from incore on: {', '.join(mismatched)}"
        )
    ratios = {
        label: round(median / medians["incore"], 3)
        for label, median in medians.items()
    }
    # per-level ratios to the incore level medians: machine-independent
    # like the totals, but localised — a regression confined to one
    # level moves its own ratio even when faster levels mask it in the
    # total.  Backends that do not report level timings (multiprocess
    # folds its levels into worker round-trips) are skipped; levels
    # under the noise floor gate nothing and are recorded as null.
    incore_levels = level_medians["incore"]
    level_ratios: dict[str, list[float | None]] = {}
    for label, levels in level_medians.items():
        if len(levels) != len(incore_levels):
            continue
        level_ratios[label] = [
            round(mine / ref, 3)
            if ref >= LEVEL_NOISE_FLOOR_SECONDS
            else None
            for mine, ref in zip(levels, incore_levels)
        ]
    return {
        "workload": WORKLOAD,
        "repeats": REPEATS,
        "tolerance": TOLERANCE,
        "level_noise_floor_seconds": LEVEL_NOISE_FLOOR_SECONDS,
        "clique_sha256": reference,
        "median_seconds": {
            label: round(m, 4) for label, m in medians.items()
        },
        "ratio_to_incore": ratios,
        "level_median_seconds": {
            label: [round(s, 5) for s in levels]
            for label, levels in level_medians.items()
        },
        "level_ratio_to_incore": level_ratios,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--write", metavar="PATH", help="measure and write the baseline"
    )
    group.add_argument(
        "--check", metavar="PATH",
        help="measure and compare against a committed baseline",
    )
    args = parser.parse_args(argv)

    metrics = measure()
    if args.write:
        path = Path(args.write)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(metrics, indent=2) + "\n")
        print(f"baseline written to {path}")
        print(json.dumps(metrics, indent=2))
        return 0

    path = Path(args.check)
    baseline = json.loads(path.read_text())
    failures = []
    if metrics["workload"] != baseline.get("workload"):
        failures.append(
            f"  workload drifted: baseline {baseline.get('workload')!r} "
            f"!= measured {metrics['workload']!r}"
        )
    if metrics["clique_sha256"] != baseline.get("clique_sha256"):
        failures.append(
            "  clique digest drifted: baseline "
            f"{baseline.get('clique_sha256')!r} != measured "
            f"{metrics['clique_sha256']!r}"
        )
    base_ratios = baseline.get("ratio_to_incore", {})
    for label, measured in metrics["ratio_to_incore"].items():
        base = base_ratios.get(label)
        if base is None:
            failures.append(
                f"  {label}: no committed ratio (rerun --write to add it)"
            )
            continue
        allowed = base * TOLERANCE
        if measured > allowed:
            failures.append(
                f"  {label}: ratio-to-incore {measured} exceeds "
                f"{base} x {TOLERANCE} = {allowed:.3f} "
                f"(median {metrics['median_seconds'][label]}s)"
            )
    base_levels = baseline.get("level_ratio_to_incore", {})
    for label, measured_levels in metrics[
        "level_ratio_to_incore"
    ].items():
        committed = base_levels.get(label)
        if committed is None:
            failures.append(
                f"  {label}: no committed per-level ratios "
                "(rerun --write to add them)"
            )
            continue
        if len(committed) != len(measured_levels):
            failures.append(
                f"  {label}: level count drifted from "
                f"{len(committed)} to {len(measured_levels)}"
            )
            continue
        for level, (measured, base) in enumerate(
            zip(measured_levels, committed)
        ):
            # either side under the noise floor (null) gates nothing:
            # the floor is evaluated on the measuring machine, so a
            # level can cross it between hosts without regressing
            if measured is None or base is None:
                continue
            allowed = base * TOLERANCE
            if measured > allowed:
                failures.append(
                    f"  {label} level[{level}]: per-level ratio "
                    f"{measured} exceeds {base} x {TOLERANCE} = "
                    f"{allowed:.3f}"
                )
    if failures:
        print("speed baseline violations:", file=sys.stderr)
        print("\n".join(failures), file=sys.stderr)
        print(
            "(rerun with --write after verifying the slowdown is "
            "intentional)",
            file=sys.stderr,
        )
        return 1
    shown = ", ".join(
        f"{label} {metrics['median_seconds'][label]}s "
        f"(x{metrics['ratio_to_incore'][label]})"
        for label in metrics["median_seconds"]
    )
    print(f"speed baseline ok: {shown}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
