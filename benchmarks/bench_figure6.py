"""Figure 6 benchmark: absolute + relative speedups up to 64 processors.

Paper claims checked: relative speedups stay near 1.8 across doublings;
absolute speedups track the ideal line closely through 64 processors.
"""

from __future__ import annotations

import pytest

from repro.experiments import figure6


@pytest.fixture(scope="module")
def result(traces, spec):
    return figure6.run()


def bench_figure6_speedups(benchmark, traces, spec):
    """Speedup computation over the four Init_K series."""
    res = benchmark.pedantic(
        figure6.run, rounds=3, iterations=1, warmup_rounds=1
    )
    for k, series in res.absolute.items():
        benchmark.extra_info[f"absolute_init_k_{k}"] = {
            p: round(s, 2) for p, s in series.items()
        }
    for k, series in res.relative.items():
        benchmark.extra_info[f"relative_init_k_{k}"] = {
            p: round(s, 2) for p, s in series.items()
        }


def test_figure6_shapes(result):
    for k in (3, 18, 19, 20):
        assert 1.5 <= result.mean_relative(k) <= 2.0
        # near-linear at 64: at least half the ideal slope
        assert result.absolute[k][64] >= 20
