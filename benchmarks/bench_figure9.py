"""Figure 9 benchmark: candidate memory vs clique size.

Paper claim checked: candidate storage rises with clique size to a peak
near the middle of the range (13 of 28 on the myogenic graph, ~20 GB at
full scale) and then falls quickly; the full enumeration from size 3 is
benchmarked and the measured byte series recorded.
"""

from __future__ import annotations

import pytest

from repro.experiments import figure9


@pytest.fixture(scope="module")
def result(myogenic):
    return figure9.run(myogenic)


def bench_figure9_enumeration(benchmark, myogenic):
    """Full enumeration with per-level memory accounting."""
    res = benchmark.pedantic(
        lambda: figure9.run(myogenic),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    benchmark.extra_info["series_bytes"] = dict(
        zip(res.profile.sizes, res.profile.measured_bytes)
    )
    peak_k, peak_b = res.profile.peak()
    benchmark.extra_info["peak_k"] = peak_k
    benchmark.extra_info["peak_bytes"] = peak_b
    benchmark.extra_info["paper_peak_fraction"] = round(
        figure9.PAPER_PEAK_K / figure9.PAPER_MAX_CLIQUE, 2
    )


def test_figure9_shape(result):
    sizes = result.profile.sizes
    peak_k, peak_b = result.profile.peak()
    assert sizes[0] < peak_k < sizes[-1]
    assert 0.25 <= result.peak_fraction() <= 0.75
    assert result.profile.measured_bytes[-1] < peak_b
