"""Regression gate for WAH compression (``--level-store wah``), at rest
and in the compute domain.

The first committed benchmark baseline (ROADMAP: "publish regression
baselines in CI").  The script enumerates a tiny sparse Figure-9-style
workload — planted modules over sparse background noise, the regime the
paper's closing compression remark targets — across the backend matrix
and asserts the properties the compressed paths must keep forever:

* **equivalence** — every backend (``incore``/``bitscan``/``ooc``/
  ``multiprocess``), every store-based backend again on the WAH
  substrate, and both compute domains on that substrate emit the
  byte-identical maximal clique set;
* **compression** — the WAH store's peak per-level ``candidate_bytes``
  undercuts the in-memory store's peak by at least
  :data:`MIN_PEAK_REDUCTION`, on *both* compute domains (the
  compressed-domain path may not regress the at-rest footprint);
* **compressed-domain generation** — running the generation step's ANDs
  on the WAH words (``compute_domain="wah"``) cuts the bytes
  decompressed during generation by at least
  :data:`MIN_DECOMPRESSED_REDUCTION` versus the at-rest path that
  decompresses every chunk for expansion.

Enumeration is deterministic (seeded workload, canonical emission
order), so ``--check`` compares the measured numbers against the
committed baseline exactly — any drift is a real behaviour change, not
noise.  The only recorded-but-not-compared fields are the per-level
wall-clock timings (``level_seconds``), kept as data for the ROADMAP's
per-level timing baselines.

On any gate failure the per-store, per-level candidate-byte table is
printed so the failing level is visible without a re-run.

Usage::

    PYTHONPATH=src python benchmarks/check_wah_baseline.py \
        --check benchmarks/baselines/engines_wah.json
    PYTHONPATH=src python benchmarks/check_wah_baseline.py \
        --write benchmarks/baselines/engines_wah.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path

from repro.core.generators import overlapping_cliques
from repro.engine import EnumerationConfig, EnumerationEngine

#: the workload is tiny (a CI run takes seconds) but genome-scale in
#: shape: a large sparse universe whose deep-level common-neighbor
#: strings are a handful of set bits in 2000.
WORKLOAD = {
    "n": 2000,
    "clique_sizes": [12, 11, 10, 10, 9, 9, 8, 8],
    "overlap": 4,
    "p": 0.0015,
    "seed": 20260730,
    "k_min": 3,
}

#: the memory win the compressed store must keep delivering.
MIN_PEAK_REDUCTION = 3.0

#: the codec win the compressed-domain generation must keep delivering:
#: bytes decompressed during generation, at-rest path over wah-domain.
MIN_DECOMPRESSED_REDUCTION = 2.0

STORE_BACKENDS = ("incore", "bitscan", "ooc")

#: metrics compared exactly against the committed baseline (timings are
#: recorded but never compared).
DRIFT_KEYS = (
    "workload",
    "n_cliques",
    "clique_sha256",
    "store_peak_candidate_bytes",
    "wah_peak_reduction",
    "generation_decompressed_bytes",
    "wah_decompressed_reduction",
    "kernel_word_ops",
)


def _clique_digest(cliques) -> str:
    payload = "\n".join(
        " ".join(map(str, c)) for c in sorted(cliques)
    ).encode()
    return hashlib.sha256(payload).hexdigest()


def _store_table(runs: dict) -> str:
    """The per-store, per-level candidate-byte table (failure context)."""
    series = {
        "memory": runs["incore"].level_stats,
        "disk": runs["ooc"].level_stats,
        "wah": runs["incore+wah"].level_stats,
        "wah(bitset)": runs["incore+wah+bitset"].level_stats,
    }
    depth = max(len(stats) for stats in series.values())
    lines = ["level-store candidate bytes per level:"]
    header = f"  {'k':>3}" + "".join(
        f"  {name:>12}" for name in series
    )
    lines.append(header)
    for i in range(depth):
        k = next(
            stats[i].k for stats in series.values() if i < len(stats)
        )
        row = f"  {k:>3}"
        for stats in series.values():
            cell = stats[i].candidate_bytes if i < len(stats) else "-"
            row += f"  {cell:>12}"
        lines.append(row)
    return "\n".join(lines)


def _fail(message: str, runs: dict | None = None) -> SystemExit:
    """A gate failure with the store byte table attached."""
    if runs is not None:
        print(_store_table(runs), file=sys.stderr)
    return SystemExit(message)


def measure() -> dict:
    """Run the matrix and collect the baseline metrics."""
    g, _ = overlapping_cliques(
        WORKLOAD["n"],
        WORKLOAD["clique_sizes"],
        WORKLOAD["overlap"],
        p=WORKLOAD["p"],
        seed=WORKLOAD["seed"],
    )
    engine = EnumerationEngine()
    k_min = WORKLOAD["k_min"]

    runs: dict[str, object] = {}
    for backend in STORE_BACKENDS:
        for store in (None, "wah"):
            label = backend if store is None else f"{backend}+{store}"
            runs[label] = engine.run(
                g,
                EnumerationConfig(
                    backend=backend, k_min=k_min, level_store=store
                ),
            )
    # the PR-3 at-rest path, pinned explicitly: candidates compressed in
    # the store but every chunk decompressed for expansion — the
    # reference the compressed-domain gate measures against
    runs["incore+wah+bitset"] = engine.run(
        g,
        EnumerationConfig(
            backend="incore",
            k_min=k_min,
            level_store="wah",
            compute_domain="bitset",
        ),
    )
    runs["multiprocess"] = engine.run(
        g, EnumerationConfig(backend="multiprocess", k_min=k_min, jobs=2)
    )

    digests = {name: _clique_digest(r.cliques) for name, r in runs.items()}
    reference = digests["incore"]
    mismatched = sorted(
        name for name, d in digests.items() if d != reference
    )
    if mismatched:
        raise _fail(
            f"clique sets diverged from incore on: {', '.join(mismatched)}",
            runs,
        )

    peaks = {
        "memory": runs["incore"].peak_candidate_bytes(),
        # the ooc run IS the disk substrate (and its cliques are
        # digest-checked above); its candidate_bytes accounting is the
        # algorithmic footprint, directly comparable across stores
        "disk": runs["ooc"].peak_candidate_bytes(),
        "wah": runs["incore+wah"].peak_candidate_bytes(),
    }
    reduction = peaks["memory"] / max(1, peaks["wah"])
    if peaks["wah"] >= peaks["memory"]:
        raise _fail(
            f"wah peak {peaks['wah']} not below memory peak "
            f"{peaks['memory']}",
            runs,
        )
    if reduction < MIN_PEAK_REDUCTION:
        raise _fail(
            f"wah peak reduction {reduction:.2f}x below the required "
            f"{MIN_PEAK_REDUCTION}x",
            runs,
        )
    # "peak candidate bytes no worse": the compressed-domain run stores
    # the same canonical words, so its per-level footprint must be
    # byte-identical to the at-rest path's
    at_rest_peak = runs["incore+wah+bitset"].peak_candidate_bytes()
    if peaks["wah"] != at_rest_peak:
        raise _fail(
            f"compressed-domain peak {peaks['wah']} != at-rest peak "
            f"{at_rest_peak} (the two paths must store identical words)",
            runs,
        )

    # compressed-domain generation gate: bytes decompressed while
    # generating levels, at-rest vs in-domain
    at_rest_dec = runs["incore+wah+bitset"].domain_stats.get(
        "decompressed_bytes", 0
    )
    wah_dec = runs["incore+wah"].domain_stats.get("decompressed_bytes", 0)
    wah_avoided = runs["incore+wah"].domain_stats.get(
        "decompressed_bytes_avoided", 0
    )
    if at_rest_dec <= 0:
        raise _fail(
            "at-rest path reports no decompressed bytes — the telemetry "
            "is broken",
            runs,
        )
    dec_reduction = at_rest_dec / max(1, wah_dec)
    if wah_dec * MIN_DECOMPRESSED_REDUCTION > at_rest_dec:
        raise _fail(
            f"compressed-domain generation decompressed {wah_dec} bytes "
            f"vs {at_rest_dec} at rest — less than the required "
            f"{MIN_DECOMPRESSED_REDUCTION}x reduction",
            runs,
        )
    return {
        "workload": WORKLOAD,
        "backends_checked": sorted(runs),
        "n_cliques": len(runs["incore"].cliques),
        "clique_sha256": reference,
        "store_peak_candidate_bytes": peaks,
        "wah_peak_reduction": round(reduction, 2),
        "min_required_reduction": MIN_PEAK_REDUCTION,
        "generation_decompressed_bytes": {
            "at_rest": at_rest_dec,
            "wah_domain": wah_dec,
            "wah_domain_avoided": wah_avoided,
        },
        "wah_decompressed_reduction": (
            round(dec_reduction, 2) if wah_dec else "inf"
        ),
        "min_required_decompressed_reduction": MIN_DECOMPRESSED_REDUCTION,
        "kernel_word_ops": runs["incore+wah"].domain_stats.get(
            "kernel_word_ops", 0
        ),
        # wall-clock per level (seed level first), recorded for the
        # ROADMAP's per-level timing baselines; never drift-compared
        "level_seconds": {
            label: [round(s, 5) for s in runs[label].level_seconds]
            for label in ("incore", "incore+wah", "incore+wah+bitset")
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--write", metavar="PATH", help="measure and write the baseline"
    )
    group.add_argument(
        "--check", metavar="PATH",
        help="measure and compare against a committed baseline",
    )
    args = parser.parse_args(argv)

    metrics = measure()
    if args.write:
        path = Path(args.write)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(metrics, indent=2) + "\n")
        print(f"baseline written to {path}")
        print(json.dumps(metrics, indent=2))
        return 0

    path = Path(args.check)
    baseline = json.loads(path.read_text())
    drift = []
    for key in DRIFT_KEYS:
        if metrics[key] != baseline.get(key):
            drift.append(
                f"  {key}: baseline {baseline.get(key)!r} "
                f"!= measured {metrics[key]!r}"
            )
    if drift:
        print("baseline drift detected:", file=sys.stderr)
        print("\n".join(drift), file=sys.stderr)
        print(
            "(rerun with --write after verifying the change is "
            "intentional)",
            file=sys.stderr,
        )
        return 1
    dec = metrics["generation_decompressed_bytes"]
    print(
        f"wah baseline ok: {metrics['n_cliques']} cliques identical "
        f"across {len(metrics['backends_checked'])} runs; peak "
        f"candidate bytes {metrics['store_peak_candidate_bytes']['memory']}"
        f" (memory) -> {metrics['store_peak_candidate_bytes']['wah']} "
        f"(wah), {metrics['wah_peak_reduction']}x reduction; "
        f"generation decompression {dec['at_rest']} (at rest) -> "
        f"{dec['wah_domain']} (wah domain), "
        f"{metrics['wah_decompressed_reduction']}x"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
