"""Regression gate for the compressed level store (``--level-store wah``).

The first committed benchmark baseline (ROADMAP: "publish regression
baselines in CI").  The script enumerates a tiny sparse Figure-9-style
workload — planted modules over sparse background noise, the regime the
paper's closing compression remark targets — across the backend matrix
and asserts the two properties the compressed store must keep forever:

* **equivalence** — every backend (``incore``/``bitscan``/``ooc``/
  ``multiprocess``), and every store-based backend again on the WAH
  substrate, emits the byte-identical maximal clique set;
* **compression** — the WAH store's peak per-level ``candidate_bytes``
  undercuts the in-memory store's peak by at least
  :data:`MIN_PEAK_REDUCTION`.

Enumeration is deterministic (seeded workload, canonical emission
order), so ``--check`` compares the measured numbers against the
committed baseline exactly — any drift is a real behaviour change, not
noise.

Usage::

    PYTHONPATH=src python benchmarks/check_wah_baseline.py \
        --check benchmarks/baselines/engines_wah.json
    PYTHONPATH=src python benchmarks/check_wah_baseline.py \
        --write benchmarks/baselines/engines_wah.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path

from repro.core.generators import overlapping_cliques
from repro.engine import EnumerationConfig, EnumerationEngine

#: the workload is tiny (a CI run takes seconds) but genome-scale in
#: shape: a large sparse universe whose deep-level common-neighbor
#: strings are a handful of set bits in 2000.
WORKLOAD = {
    "n": 2000,
    "clique_sizes": [12, 11, 10, 10, 9, 9, 8, 8],
    "overlap": 4,
    "p": 0.0015,
    "seed": 20260730,
    "k_min": 3,
}

#: the memory win the compressed store must keep delivering.
MIN_PEAK_REDUCTION = 3.0

STORE_BACKENDS = ("incore", "bitscan", "ooc")


def _clique_digest(cliques) -> str:
    payload = "\n".join(
        " ".join(map(str, c)) for c in sorted(cliques)
    ).encode()
    return hashlib.sha256(payload).hexdigest()


def measure() -> dict:
    """Run the matrix and collect the baseline metrics."""
    g, _ = overlapping_cliques(
        WORKLOAD["n"],
        WORKLOAD["clique_sizes"],
        WORKLOAD["overlap"],
        p=WORKLOAD["p"],
        seed=WORKLOAD["seed"],
    )
    engine = EnumerationEngine()
    k_min = WORKLOAD["k_min"]

    runs: dict[str, object] = {}
    for backend in STORE_BACKENDS:
        for store in (None, "wah"):
            label = backend if store is None else f"{backend}+{store}"
            runs[label] = engine.run(
                g,
                EnumerationConfig(
                    backend=backend, k_min=k_min, level_store=store
                ),
            )
    runs["multiprocess"] = engine.run(
        g, EnumerationConfig(backend="multiprocess", k_min=k_min, jobs=2)
    )

    digests = {name: _clique_digest(r.cliques) for name, r in runs.items()}
    reference = digests["incore"]
    mismatched = sorted(
        name for name, d in digests.items() if d != reference
    )
    if mismatched:
        raise SystemExit(
            f"clique sets diverged from incore on: {', '.join(mismatched)}"
        )

    peaks = {
        "memory": runs["incore"].peak_candidate_bytes(),
        # the ooc run IS the disk substrate (and its cliques are
        # digest-checked above); its candidate_bytes accounting is the
        # algorithmic footprint, directly comparable across stores
        "disk": runs["ooc"].peak_candidate_bytes(),
        "wah": runs["incore+wah"].peak_candidate_bytes(),
    }
    reduction = peaks["memory"] / max(1, peaks["wah"])
    if peaks["wah"] >= peaks["memory"]:
        raise SystemExit(
            f"wah peak {peaks['wah']} not below memory peak "
            f"{peaks['memory']}"
        )
    if reduction < MIN_PEAK_REDUCTION:
        raise SystemExit(
            f"wah peak reduction {reduction:.2f}x below the required "
            f"{MIN_PEAK_REDUCTION}x"
        )
    return {
        "workload": WORKLOAD,
        "backends_checked": sorted(runs),
        "n_cliques": len(runs["incore"].cliques),
        "clique_sha256": reference,
        "store_peak_candidate_bytes": peaks,
        "wah_peak_reduction": round(reduction, 2),
        "min_required_reduction": MIN_PEAK_REDUCTION,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--write", metavar="PATH", help="measure and write the baseline"
    )
    group.add_argument(
        "--check", metavar="PATH",
        help="measure and compare against a committed baseline",
    )
    args = parser.parse_args(argv)

    metrics = measure()
    if args.write:
        path = Path(args.write)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(metrics, indent=2) + "\n")
        print(f"baseline written to {path}")
        print(json.dumps(metrics, indent=2))
        return 0

    path = Path(args.check)
    baseline = json.loads(path.read_text())
    drift = []
    for key in (
        "workload",
        "n_cliques",
        "clique_sha256",
        "store_peak_candidate_bytes",
        "wah_peak_reduction",
    ):
        if metrics[key] != baseline.get(key):
            drift.append(
                f"  {key}: baseline {baseline.get(key)!r} "
                f"!= measured {metrics[key]!r}"
            )
    if drift:
        print("baseline drift detected:", file=sys.stderr)
        print("\n".join(drift), file=sys.stderr)
        print(
            "(rerun with --write after verifying the change is "
            "intentional)",
            file=sys.stderr,
        )
        return 1
    print(
        f"wah baseline ok: {metrics['n_cliques']} cliques identical "
        f"across {len(metrics['backends_checked'])} runs; peak "
        f"candidate bytes {metrics['store_peak_candidate_bytes']['memory']}"
        f" (memory) -> {metrics['store_peak_candidate_bytes']['wah']} "
        f"(wah), {metrics['wah_peak_reduction']}x reduction"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
