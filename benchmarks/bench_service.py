"""Job-service benchmarks: dispatch throughput and cache-hit speedup.

The service exists for two numbers: how many enumeration jobs the
scheduler can push through per second (queue + dispatch overhead on
top of the raw engine), and how much a repeated threshold-sweep query
gains from the graph/config-keyed result cache (the whole point of
amortizing shared computation across related queries).  The
cache-miss/cache-hit pair on the same workload is the headline —
extra-info records the hit counters as evidence.

Run with the same harness as the other ``bench_*`` scripts::

    PYTHONPATH=src python -m pytest benchmarks/bench_service.py \
        -o python_files='bench_*.py' -o python_functions='bench_*' \
        --benchmark-json=service.json
"""

from __future__ import annotations

from repro.core.memory_model import predict_profile
from repro.engine import EnumerationConfig
from repro.service import (
    EnumerationServer,
    JobScheduler,
    JobSpec,
    ServiceClient,
)

#: jobs per throughput round — enough to keep both workers busy.
BATCH = 8


def bench_service_jobs_per_second(benchmark, myogenic):
    """Scheduler throughput: a batch of uncached count jobs, drained."""
    g = myogenic.graph
    cfg = EnumerationConfig(k_min=3)

    def run():
        with JobScheduler(workers=2, cache=None) as sched:
            jobs = sched.submit_batch([
                JobSpec(graph=g, config=cfg, sink="count", use_cache=False)
                for _ in range(BATCH)
            ])
            sched.drain()
        return jobs

    jobs = benchmark(run)
    benchmark.extra_info["jobs_per_round"] = len(jobs)
    benchmark.extra_info["n_cliques"] = jobs[0].sink_summary["cliques"]


def bench_service_admission_budget(benchmark, myogenic):
    """The same batch under a one-job memory budget: admission control
    serialises the workers, so the gap to
    :func:`bench_service_jobs_per_second` is the queue-wait cost of
    running budget-constrained.  Extra-info records the deferral count
    as evidence that the budget actually bit."""
    g = myogenic.graph
    cfg = EnumerationConfig(k_min=3)
    # the scheduler's own submit-time prediction for this (graph,
    # config): a budget of exactly one job forces every peer to defer
    budget = predict_profile(g.n, g.m, cfg.k_min).peak_bytes("memory")

    def run():
        with JobScheduler(
            workers=2, cache=None, memory_budget_bytes=budget
        ) as sched:
            sched.submit_batch([
                JobSpec(graph=g, config=cfg, sink="count", use_cache=False)
                for _ in range(BATCH)
            ])
            sched.drain()
            return sched.stats()["admission"]

    admission = benchmark(run)
    benchmark.extra_info["budget_bytes"] = budget
    benchmark.extra_info["deferred_total"] = admission["deferred_total"]
    benchmark.extra_info["admitted_total"] = admission["admitted_total"]


def bench_service_cache_miss(benchmark, myogenic):
    """The uncached baseline of the repeated-sweep query (full work)."""
    g = myogenic.graph
    cfg = EnumerationConfig(k_min=3)
    with JobScheduler(workers=1, cache=None) as sched:
        job = benchmark(
            lambda: sched.submit(JobSpec(graph=g, config=cfg)).wait()
        )
    benchmark.extra_info["cache_hit"] = job.cache_hit
    benchmark.extra_info["n_cliques"] = len(job.result.cliques)


def bench_service_cache_hit(benchmark, myogenic):
    """The same query served from the warmed result cache."""
    g = myogenic.graph
    cfg = EnumerationConfig(k_min=3)
    with JobScheduler(workers=1) as sched:
        sched.submit(JobSpec(graph=g, config=cfg)).wait()  # warm it
        job = benchmark(
            lambda: sched.submit(JobSpec(graph=g, config=cfg)).wait()
        )
        benchmark.extra_info["cache_hits"] = sched.cache.stats()["hits"]
    benchmark.extra_info["cache_hit"] = job.cache_hit
    benchmark.extra_info["n_cliques"] = len(job.result.cliques)


def bench_service_wire_round_trip(benchmark, myogenic):
    """Submit + wait over the TCP JSON-lines protocol (cache warmed)."""
    g = myogenic.graph
    with EnumerationServer() as server:
        with ServiceClient(server.address) as client:
            # warm with collect — only collect jobs populate the cache
            client.wait(client.submit(g, k_min=3))

            def round_trip():
                return client.wait(client.submit(g, k_min=3, sink="count"))

            job = benchmark(round_trip)
    benchmark.extra_info["cache_hit"] = job["cache_hit"]
    benchmark.extra_info["n_cliques"] = job["sink_summary"]["cliques"]
