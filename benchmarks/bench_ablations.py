"""Ablation benchmarks for the design choices DESIGN.md calls out.

* load balancing on vs off (paper Section 2.3's centralised scheduler);
* remote-access penalty sweep (the NUMA trade-off the paper discusses);
* Init_K sensitivity (the run-time-halving observation);
* WAH compressed vs uncompressed bitmap AND (the paper's compression
  direction).
"""

from __future__ import annotations

import pytest

from repro.core.bitset import BitSet
from repro.core.compressed import WahBitmap
from repro.parallel.machine import MachineSpec
from repro.parallel.metrics import load_balance_stats
from repro.parallel.parallel_enumerator import simulate_run


def bench_simulation_balanced_16p(benchmark, traces, spec):
    """Simulated 16-processor run with the dynamic balancer on."""
    trace = traces[18]
    run = benchmark(
        lambda: simulate_run(trace, spec.with_processors(16), balance=True)
    )
    benchmark.extra_info["elapsed_virtual_s"] = round(
        run.elapsed_seconds, 3
    )
    benchmark.extra_info["std_over_mean"] = round(
        load_balance_stats(run).std_over_mean, 4
    )


def bench_simulation_unbalanced_16p(benchmark, traces, spec):
    """Same run without load balancing (ablation)."""
    trace = traces[18]
    run = benchmark(
        lambda: simulate_run(
            trace, spec.with_processors(16), balance=False
        )
    )
    benchmark.extra_info["elapsed_virtual_s"] = round(
        run.elapsed_seconds, 3
    )
    benchmark.extra_info["std_over_mean"] = round(
        load_balance_stats(run).std_over_mean, 4
    )


@pytest.mark.parametrize("penalty", [1.0, 1.3, 2.0, 4.0])
def bench_remote_penalty_sweep(benchmark, traces, spec, penalty):
    """256-processor virtual time as the NUMA penalty grows."""
    trace = traces[18]
    custom = MachineSpec(
        n_processors=256,
        seconds_per_work_unit=spec.seconds_per_work_unit,
        remote_access_penalty=penalty,
        sync_base_seconds=spec.sync_base_seconds,
        sync_seconds_per_processor=spec.sync_seconds_per_processor,
    )
    run = benchmark(lambda: simulate_run(trace, custom, balance=True))
    benchmark.extra_info["penalty"] = penalty
    benchmark.extra_info["elapsed_virtual_s"] = round(
        run.elapsed_seconds, 3
    )


@pytest.mark.parametrize("paper_init_k", [18, 19, 20])
def bench_init_k_sensitivity(benchmark, traces, spec, paper_init_k):
    """Sequential virtual time per Init_K (paper: halves per +1)."""
    trace = traces[paper_init_k]
    run = benchmark(
        lambda: simulate_run(trace, spec.with_processors(1))
    )
    benchmark.extra_info["paper_init_k"] = paper_init_k
    benchmark.extra_info["virtual_seconds"] = round(
        run.elapsed_seconds, 2
    )


def bench_bitset_and(benchmark):
    """Uncompressed 64-bit-word AND over a 12,422-bit universe."""
    a = BitSet.from_indices(12422, range(0, 12422, 7))
    b = BitSet.from_indices(12422, range(0, 12422, 11))
    benchmark(lambda: a & b)


def bench_wah_and_sparse(benchmark):
    """WAH compressed AND on sparse bitmaps (the paper's direction)."""
    a = WahBitmap.from_indices(12422, range(0, 12422, 500))
    b = WahBitmap.from_indices(12422, range(0, 12422, 700))
    benchmark(lambda: a & b)
    benchmark.extra_info["compression_ratio_a"] = round(
        a.compression_ratio(), 1
    )


# ---------------------------------------------------------------------------
# Generation-variant and storage-layer ablations
# ---------------------------------------------------------------------------

def _drive(g, step):
    from repro.core.clique_enumerator import build_initial_sublists
    from repro.core.counters import OpCounters

    counters = OpCounters()
    sink: list[tuple[int, ...]] = []
    subs = build_initial_sublists(g, counters, sink.append, True)
    while subs:
        subs = step(subs, g, counters, sink.append)
    return sink


def bench_generation_list_method(benchmark, brain_sparse):
    """The paper's chosen generation: compare the tail list (bounded by
    n-k) — Figure 3's method."""
    from repro.core.clique_enumerator import generate_next_level

    out = benchmark(lambda: _drive(brain_sparse.graph, generate_next_level))
    benchmark.extra_info["n_cliques"] = len(out)


def bench_generation_bitscan(benchmark, brain_sparse):
    """The paper's rejected alternative: scan all n bits of the common-
    neighbor string per clique (Section 2.3's discussion)."""
    from repro.core.clique_enumerator import generate_next_level_bitscan

    out = benchmark(
        lambda: _drive(brain_sparse.graph, generate_next_level_bitscan)
    )
    benchmark.extra_info["n_cliques"] = len(out)


def bench_storage_in_core(benchmark, myogenic):
    """In-core enumeration (the paper's contribution)."""
    from repro.core.clique_enumerator import enumerate_maximal_cliques

    res = benchmark(
        lambda: enumerate_maximal_cliques(myogenic.graph, k_min=3)
    )
    benchmark.extra_info["n_cliques"] = len(res.cliques)


def bench_storage_out_of_core(benchmark, myogenic):
    """Out-of-core enumeration (the predecessor the paper retired);
    records the disk traffic the in-core version avoids."""
    from repro.core.out_of_core import enumerate_maximal_cliques_ooc

    res = benchmark(
        lambda: enumerate_maximal_cliques_ooc(myogenic.graph, k_min=3)
    )
    benchmark.extra_info["bytes_written"] = res.io.bytes_written
    benchmark.extra_info["bytes_read"] = res.io.bytes_read
    benchmark.extra_info["io_ops"] = res.io.read_ops + res.io.write_ops
