"""Backend shoot-out: every registered engine on one workload.

The paper's whole argument in one benchmark table — the identical
level-wise algorithm on interchangeable substrates, timed through the
unified :mod:`repro.engine` API.  Extra-info records the per-backend
evidence: operation counts (identical across sequential substrates by
construction), disk traffic for ``ooc``, transfers for ``multiprocess``.

Run with the same harness as the other ``bench_*`` scripts (the
``bench_*`` naming needs explicit collection overrides)::

    PYTHONPATH=src python -m pytest benchmarks/bench_engines.py \
        -o python_files='bench_*.py' -o python_functions='bench_*' \
        --benchmark-json=engines.json
"""

from __future__ import annotations

import pytest

from repro.engine import EnumerationConfig, EnumerationEngine

ENGINE = EnumerationEngine()


def _run(graph, backend, **kw):
    return ENGINE.run(
        graph, EnumerationConfig(backend=backend, k_min=3, **kw)
    )


def bench_engine_incore(benchmark, myogenic):
    """In-core backend (the paper's contribution) on the myogenic graph."""
    res = benchmark(lambda: _run(myogenic.graph, "incore"))
    benchmark.extra_info["n_cliques"] = len(res.cliques)
    benchmark.extra_info["pair_checks"] = res.counters.pair_checks


def bench_engine_bitscan(benchmark, myogenic):
    """Rejected n-bit-scan generation through the same API."""
    res = benchmark(lambda: _run(myogenic.graph, "bitscan"))
    benchmark.extra_info["n_cliques"] = len(res.cliques)
    benchmark.extra_info["bits_scanned"] = res.counters.extra.get(
        "bits_scanned", 0
    )


def bench_engine_ooc(benchmark, myogenic):
    """Disk-spilled backend; extra-info shows the avoided I/O."""
    res = benchmark(lambda: _run(myogenic.graph, "ooc"))
    benchmark.extra_info["n_cliques"] = len(res.cliques)
    benchmark.extra_info["bytes_written"] = res.io.bytes_written
    benchmark.extra_info["bytes_read"] = res.io.bytes_read


@pytest.mark.parametrize("jobs", [1, 2])
def bench_engine_multiprocess(benchmark, myogenic, jobs):
    """Process-pool backend at 1 and 2 workers."""
    res = benchmark(lambda: _run(myogenic.graph, "multiprocess", jobs=jobs))
    benchmark.extra_info["n_cliques"] = len(res.cliques)
    benchmark.extra_info["jobs"] = jobs
    benchmark.extra_info["transfers"] = res.transfers


@pytest.mark.parametrize("jobs", [1, 2, 4, 8])
def bench_engine_threads(benchmark, myogenic, jobs):
    """Shared-memory threaded backend across the worker sweep.

    Extra-info records the scaling evidence against the paper's
    Figure 7: speedup over the sequential in-core run measured in the
    same session, plus the work-stealing traffic.  Real speedup needs
    real cores — the numpy kernels release the GIL, so the curve
    tracks the host's core count (flat on a single-core runner).
    """
    import time

    t0 = time.perf_counter()
    base = _run(myogenic.graph, "incore")
    incore_seconds = time.perf_counter() - t0
    res = benchmark(lambda: _run(myogenic.graph, "threads", jobs=jobs))
    assert sorted(res.cliques) == sorted(base.cliques)
    benchmark.extra_info["n_cliques"] = len(res.cliques)
    benchmark.extra_info["jobs"] = jobs
    benchmark.extra_info["stolen_sublists"] = res.transfers
    stats = getattr(benchmark, "stats", None)
    if stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["speedup_vs_incore"] = round(
            incore_seconds / max(stats.stats.median, 1e-9), 2
        )


def bench_engine_incore_wah(benchmark, myogenic):
    """Incore step over the WAH-compressed level store (at-rest path).

    ``compute_domain="bitset"`` pins the PR-3 behaviour — compress at
    rest, decompress every chunk for expansion — so this bench stays
    comparable across PRs.  Extra-info records the memory argument: the
    compressed peak candidate bytes against the uncompressed store's
    peak, plus the clique-set equality every substrate must preserve.
    """
    res = benchmark(
        lambda: _run(
            myogenic.graph, "incore", level_store="wah",
            compute_domain="bitset",
        )
    )
    mem = _run(myogenic.graph, "incore")
    assert sorted(res.cliques) == sorted(mem.cliques)
    benchmark.extra_info["n_cliques"] = len(res.cliques)
    benchmark.extra_info["peak_candidate_bytes"] = (
        res.peak_candidate_bytes()
    )
    benchmark.extra_info["memory_peak_candidate_bytes"] = (
        mem.peak_candidate_bytes()
    )
    benchmark.extra_info["peak_compression"] = round(
        mem.peak_candidate_bytes() / max(1, res.peak_candidate_bytes()), 2
    )
    benchmark.extra_info["generation_decompressed_bytes"] = (
        res.domain_stats.get("decompressed_bytes", 0)
    )


def bench_engine_incore_wah_domain(benchmark, myogenic):
    """Compressed-domain generation over the WAH store.

    The paper's closing remark made executable: the generation step's
    ANDs run directly on the WAH words (``compute_domain="wah"``), so
    the level never round-trips through raw bit strings.  Extra-info
    records the codec traffic this avoids relative to the at-rest path
    of :func:`bench_engine_incore_wah`, plus the kernel volume that
    replaced it — and asserts the output is byte-identical.
    """
    res = benchmark(
        lambda: _run(
            myogenic.graph, "incore", level_store="wah",
            compute_domain="wah",
        )
    )
    at_rest = _run(
        myogenic.graph, "incore", level_store="wah",
        compute_domain="bitset",
    )
    assert res.cliques == at_rest.cliques
    assert res.counters.snapshot() == at_rest.counters.snapshot()
    benchmark.extra_info["n_cliques"] = len(res.cliques)
    benchmark.extra_info["peak_candidate_bytes"] = (
        res.peak_candidate_bytes()
    )
    benchmark.extra_info["decompressed_bytes"] = (
        res.domain_stats.get("decompressed_bytes", 0)
    )
    benchmark.extra_info["decompressed_bytes_avoided"] = (
        res.domain_stats.get("decompressed_bytes_avoided", 0)
    )
    benchmark.extra_info["at_rest_decompressed_bytes"] = (
        at_rest.domain_stats.get("decompressed_bytes", 0)
    )
    benchmark.extra_info["kernel_word_ops"] = (
        res.domain_stats.get("kernel_word_ops", 0)
    )
    benchmark.extra_info["kernel_ands"] = (
        res.domain_stats.get("kernel_ands", 0)
    )
