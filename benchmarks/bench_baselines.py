"""Baseline comparison: Bron–Kerbosch variants vs the Clique Enumerator.

Section 2.2's qualitative claims: Improved BK (pivoting) "operate[s] more
efficiently on graphs with a high number of overlapping cliques" than
Base BK; the Clique Enumerator adds non-decreasing-order emission and
candidate-only storage on top.
"""

from __future__ import annotations

import pytest

from repro.core.bron_kerbosch import (
    bron_kerbosch_base,
    bron_kerbosch_degeneracy,
    bron_kerbosch_pivot,
)
from repro.core.clique_enumerator import enumerate_maximal_cliques
from repro.core.generators import erdos_renyi, overlapping_cliques


@pytest.fixture(scope="module")
def er_graph():
    return erdos_renyi(150, 0.15, seed=2005)


@pytest.fixture(scope="module")
def overlap_graph():
    g, _ = overlapping_cliques(
        120, [12, 11, 11, 10, 10, 9], 6, p=0.02, seed=2005
    )
    return g


def bench_bk_base_er(benchmark, er_graph):
    out = benchmark(lambda: list(bron_kerbosch_base(er_graph)))
    benchmark.extra_info["n_cliques"] = len(out)


def bench_bk_pivot_er(benchmark, er_graph):
    out = benchmark(lambda: list(bron_kerbosch_pivot(er_graph)))
    benchmark.extra_info["n_cliques"] = len(out)


def bench_bk_degeneracy_er(benchmark, er_graph):
    out = benchmark(lambda: list(bron_kerbosch_degeneracy(er_graph)))
    benchmark.extra_info["n_cliques"] = len(out)


def bench_clique_enumerator_er(benchmark, er_graph):
    res = benchmark(lambda: enumerate_maximal_cliques(er_graph, k_min=1))
    benchmark.extra_info["n_cliques"] = len(res.cliques)


def bench_bk_base_overlapping(benchmark, overlap_graph):
    out = benchmark(lambda: list(bron_kerbosch_base(overlap_graph)))
    benchmark.extra_info["n_cliques"] = len(out)


def bench_bk_pivot_overlapping(benchmark, overlap_graph):
    out = benchmark(lambda: list(bron_kerbosch_pivot(overlap_graph)))
    benchmark.extra_info["n_cliques"] = len(out)


def bench_clique_enumerator_overlapping(benchmark, overlap_graph):
    res = benchmark(
        lambda: enumerate_maximal_cliques(overlap_graph, k_min=1)
    )
    benchmark.extra_info["n_cliques"] = len(res.cliques)


def test_all_baselines_agree(er_graph, overlap_graph):
    for g in (er_graph, overlap_graph):
        ref = sorted(enumerate_maximal_cliques(g, k_min=1).cliques)
        assert sorted(bron_kerbosch_base(g)) == ref
        assert sorted(bron_kerbosch_pivot(g)) == ref
        assert sorted(bron_kerbosch_degeneracy(g)) == ref
