"""Table 1 benchmark: Kose RAM vs sequential Clique Enumerator.

Paper row: 17,261 s (Kose) vs 45 s (Clique Enumerator) = 383x on the
12,422-vertex 0.008 %-density graph, clique sizes 3–17, 1 GHz G4.

Here: both algorithms on the scaled analog over the same size range;
pytest-benchmark records the distributions, and the regenerated Table 1
rows land in ``extra_info``.  Run with ``--benchmark-only``; print the
full table via ``python -m repro.experiments.runner table1``.
"""

from __future__ import annotations

import pytest

from repro.core.clique_enumerator import enumerate_maximal_cliques
from repro.core.kose import kose_enumerate
from repro.experiments import table1


@pytest.fixture(scope="module")
def verified(brain_sparse):
    """One verified comparison run; benches reuse its workload."""
    result = table1.run(brain_sparse)
    assert result.outputs_match, "Table 1 algorithms disagree"
    return result


def bench_clique_enumerator(benchmark, brain_sparse, verified):
    """Sequential Clique Enumerator, sizes 3..17 (paper: 45 s)."""
    g = brain_sparse.graph
    res = benchmark.pedantic(
        lambda: enumerate_maximal_cliques(g, k_min=3, k_max=17),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    benchmark.extra_info["paper_seconds"] = table1.PAPER["ce_seconds"]
    benchmark.extra_info["n_maximal"] = len(res.cliques)
    benchmark.extra_info["measured_speedup_vs_kose"] = round(
        verified.speedup, 2
    )
    benchmark.extra_info["memory_ratio_vs_kose"] = round(
        verified.memory_ratio, 2
    )


def bench_kose_ram(benchmark, brain_sparse):
    """Kose et al. RAM baseline, sizes 3..17 (paper: 17,261 s)."""
    g = brain_sparse.graph
    res = benchmark.pedantic(
        lambda: kose_enumerate(g, k_min=3, k_max=17),
        rounds=2,
        iterations=1,
        warmup_rounds=1,
    )
    benchmark.extra_info["paper_seconds"] = table1.PAPER["kose_seconds"]
    benchmark.extra_info["paper_speedup"] = table1.PAPER["speedup"]
    benchmark.extra_info["n_maximal"] = len(res.cliques)
