"""Microbenchmarks for the substrate hot paths.

These pin the performance characteristics the framework depends on: the
bitmap primitives (one AND per common-neighbor derivation, one
any-bit-exists per maximality test), the WAH kernel layer (scalar
per-word vs batched structure-of-arrays — the ratio the
``kernel="numpy"`` policy exists to win), the expression pipeline
stages, and the k-clique seeding.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.bio.correlation import spearman_correlation
from repro.bio.expression import ModuleSpec, synthetic_expression
from repro.core import bitset as bs
from repro.core import wah_kernels as wk
from repro.core.compressed import (
    WahBitmap,
    WahScratch,
    wah_and_count,
    wah_and_into,
)
from repro.core.generators import erdos_renyi
from repro.core.graph_ops import at_least_k_of_n
from repro.core.kclique import enumerate_k_cliques


@pytest.fixture(scope="module")
def words_pair():
    n = 12422  # the paper's probe-set count
    a = bs.indices_to_words(range(0, n, 3), n)
    b = bs.indices_to_words(range(0, n, 5), n)
    out = np.zeros_like(a)
    return a, b, out


def bench_words_and(benchmark, words_pair):
    """Length-12,422 bit-string AND (the paper's core primitive)."""
    a, b, out = words_pair
    benchmark(bs.words_and, a, b, out)


def bench_words_any(benchmark, words_pair):
    """BitOneExists over 12,422 bits (the maximality test)."""
    a, _, _ = words_pair
    benchmark(bs.words_any, a)


def bench_words_count(benchmark, words_pair):
    """Popcount over 12,422 bits."""
    a, _, _ = words_pair
    benchmark(bs.words_count, a)


def bench_common_neighbors_chain(benchmark):
    """k-fold AND chain: common neighbors of a 10-clique at n=12,422."""
    n = 12422
    rows = np.vstack(
        [bs.indices_to_words(range(i, n, 7 + i), n) for i in range(10)]
    )
    out = np.zeros(rows.shape[1], dtype=np.uint64)

    def chain():
        np.copyto(out, rows[0])
        for i in range(1, 10):
            np.bitwise_and(out, rows[i], out=out)
        return out

    benchmark(chain)


@pytest.fixture(scope="module")
def wah_batch():
    """512 paired WAH streams over the paper's 12,422-bit universe."""
    n = 12422
    rng = random.Random(7)
    ng = (n + wk.GROUP_BITS - 1) // wk.GROUP_BITS

    def stream():
        # clustered sparse indices: realistic fill/literal alternation
        density = rng.choice([0.002, 0.01, 0.05])
        return WahBitmap.from_indices(
            n, [i for i in range(n) if rng.random() < density]
        ).wah_words()

    a = [stream() for _ in range(512)]
    b = [stream() for _ in range(512)]
    aw, ao = wk.concat_streams(a)
    bw, bo = wk.concat_streams(b)
    return a, b, aw, ao, bw, bo, ng


def bench_wah_and_scalar(benchmark, wah_batch):
    """512 compressed ANDs through the per-word Python kernel."""
    a, b, _, _, _, _, ng = wah_batch
    scratch = WahScratch()

    def run():
        for x, y in zip(a, b):
            wah_and_into(x.tolist(), y.tolist(), ng, scratch)

    benchmark(run)


def bench_wah_and_batch(benchmark, wah_batch):
    """The same 512 ANDs through one batched numpy kernel call."""
    _, _, aw, ao, bw, bo, ng = wah_batch
    benchmark(wk.batch_and, aw, ao, bw, bo, ng)


def bench_wah_count_scalar(benchmark, wah_batch):
    """512 compressed popcounts, per-word Python kernel."""
    a, b, _, _, _, _, ng = wah_batch
    scratch = WahScratch()

    def run():
        for x, y in zip(a, b):
            wah_and_count(x.tolist(), y.tolist(), ng, scratch)

    benchmark(run)


def bench_wah_count_batch(benchmark, wah_batch):
    """The same 512 popcounts through one batched kernel call."""
    _, _, aw, ao, bw, bo, ng = wah_batch
    benchmark(wk.batch_and_count, aw, ao, bw, bo, ng)


def bench_wah_encode_batch(benchmark, wah_batch):
    """Batch index→WAH encode of 512 decoded streams."""
    _, _, aw, ao, _, _, ng = wah_batch
    n = 12422
    flat, offs = wk.batch_decode_indices(aw, ao, ng, n)
    benchmark(wk.batch_encode_indices, flat, offs, n)


def bench_spearman_1242_genes(benchmark):
    """Spearman matrix at the Table 1 workload scale."""
    ds = synthetic_expression(
        1242, 64, [ModuleSpec(17, 0.985)], seed=1
    )
    benchmark(spearman_correlation, ds.matrix)


def bench_at_least_3_of_5(benchmark):
    """Replicate voting over five 500-vertex observation graphs."""
    graphs = [erdos_renyi(500, 0.02, seed=s) for s in range(5)]
    benchmark(at_least_k_of_n, graphs, 3)


def bench_kclique_seeding(benchmark, myogenic):
    """Init_K=9 seeding on the myogenic workload (k-clique enumerator)."""
    res = benchmark(enumerate_k_cliques, myogenic.graph, 9)
    benchmark.extra_info["n_kcliques"] = len(res.maximal) + len(
        res.non_maximal
    )
