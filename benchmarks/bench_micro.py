"""Microbenchmarks for the substrate hot paths.

These pin the performance characteristics the framework depends on: the
bitmap primitives (one AND per common-neighbor derivation, one
any-bit-exists per maximality test), the expression pipeline stages, and
the k-clique seeding.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bio.correlation import spearman_correlation
from repro.bio.expression import ModuleSpec, synthetic_expression
from repro.core import bitset as bs
from repro.core.generators import erdos_renyi
from repro.core.graph_ops import at_least_k_of_n
from repro.core.kclique import enumerate_k_cliques


@pytest.fixture(scope="module")
def words_pair():
    n = 12422  # the paper's probe-set count
    a = bs.indices_to_words(range(0, n, 3), n)
    b = bs.indices_to_words(range(0, n, 5), n)
    out = np.zeros_like(a)
    return a, b, out


def bench_words_and(benchmark, words_pair):
    """Length-12,422 bit-string AND (the paper's core primitive)."""
    a, b, out = words_pair
    benchmark(bs.words_and, a, b, out)


def bench_words_any(benchmark, words_pair):
    """BitOneExists over 12,422 bits (the maximality test)."""
    a, _, _ = words_pair
    benchmark(bs.words_any, a)


def bench_words_count(benchmark, words_pair):
    """Popcount over 12,422 bits."""
    a, _, _ = words_pair
    benchmark(bs.words_count, a)


def bench_common_neighbors_chain(benchmark):
    """k-fold AND chain: common neighbors of a 10-clique at n=12,422."""
    n = 12422
    rows = np.vstack(
        [bs.indices_to_words(range(i, n, 7 + i), n) for i in range(10)]
    )
    out = np.zeros(rows.shape[1], dtype=np.uint64)

    def chain():
        np.copyto(out, rows[0])
        for i in range(1, 10):
            np.bitwise_and(out, rows[i], out=out)
        return out

    benchmark(chain)


def bench_spearman_1242_genes(benchmark):
    """Spearman matrix at the Table 1 workload scale."""
    ds = synthetic_expression(
        1242, 64, [ModuleSpec(17, 0.985)], seed=1
    )
    benchmark(spearman_correlation, ds.matrix)


def bench_at_least_3_of_5(benchmark):
    """Replicate voting over five 500-vertex observation graphs."""
    graphs = [erdos_renyi(500, 0.02, seed=s) for s in range(5)]
    benchmark(at_least_k_of_n, graphs, 3)


def bench_kclique_seeding(benchmark, myogenic):
    """Init_K=9 seeding on the myogenic workload (k-clique enumerator)."""
    res = benchmark(enumerate_k_cliques, myogenic.graph, 9)
    benchmark.extra_info["n_kcliques"] = len(res.maximal) + len(
        res.non_maximal
    )
