"""Figure 7 benchmark: 256-processor speedup vs sequential run time.

Paper claim checked: the 256-processor absolute speedup increases with
sequential run time (22x at 98 s up to 51x at 1,948 s).
"""

from __future__ import annotations

import pytest

from repro.experiments import figure7


@pytest.fixture(scope="module")
def result(traces, spec):
    return figure7.run()


def bench_figure7_rows(benchmark, traces, spec):
    res = benchmark.pedantic(
        figure7.run, rounds=3, iterations=1, warmup_rounds=1
    )
    benchmark.extra_info["rows"] = [
        {
            "init_k": row.paper_init_k,
            "t1": round(row.sequential_seconds, 1),
            "t256": round(row.parallel_seconds, 2),
            "speedup": round(row.speedup, 1),
        }
        for row in res.rows
    ]


def test_figure7_monotonicity(result):
    assert result.is_monotone()
    speedups = [r.speedup for r in result.rows]
    assert min(speedups) > 10
    assert max(speedups) < 110
