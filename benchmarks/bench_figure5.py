"""Figure 5 benchmark: run time vs processors for Init_K ∈ {18, 19, 20}.

Regenerates the Figure 5 series (simulated-Altix virtual seconds per
processor count) into ``extra_info`` and benchmarks the simulation
machinery itself.  The paper's claims checked here:

* run times scale well up to 64 processors,
* performance degrades a little at 256,
* +1 Init_K roughly halves the run time.
"""

from __future__ import annotations

import pytest

from repro.experiments import figure5


@pytest.fixture(scope="module")
def result(traces, spec):
    return figure5.run()


def bench_figure5_sweep(benchmark, traces, spec):
    """Full 1..256-processor replay sweep for the three Init_K series."""
    res = benchmark.pedantic(
        figure5.run, rounds=3, iterations=1, warmup_rounds=1
    )
    for k in (18, 19, 20):
        series = {
            p: round(res.seconds(k, p), 3)
            for p in res.processor_counts
        }
        benchmark.extra_info[f"init_k_{k}_seconds"] = series


def test_figure5_shapes(result):
    """Assert the paper's qualitative claims on the regenerated series."""
    for k in (18, 19, 20):
        assert result.seconds(k, 64) < result.seconds(k, 1) / 20
        assert result.seconds(k, 256) > result.seconds(k, 128) * 0.9
    t18 = result.seconds(18, 1)
    t19 = result.seconds(19, 1)
    t20 = result.seconds(20, 1)
    assert 1.4 < t18 / t19 < 2.8
    assert 1.4 < t19 / t20 < 2.8
