"""Figure 8 benchmark: per-processor load balance (mean ± std).

Paper claim checked: with the centralised dynamic load balancer, the
standard deviation of per-processor run times stays within 10 % of the
mean for 2–16 processors.
"""

from __future__ import annotations

import pytest

from repro.experiments import figure8


@pytest.fixture(scope="module")
def result(traces, spec):
    return figure8.run()


def bench_figure8_balance(benchmark, traces, spec):
    res = benchmark.pedantic(
        figure8.run, rounds=3, iterations=1, warmup_rounds=1
    )
    benchmark.extra_info["balanced_std_over_mean"] = {
        p: round(s.std_over_mean, 4) for p, s in res.balanced.items()
    }
    benchmark.extra_info["unbalanced_std_over_mean"] = {
        p: round(s.std_over_mean, 4) for p, s in res.unbalanced.items()
    }


def test_figure8_balance_criterion(result):
    assert result.max_std_over_mean() <= 0.10
    for p in result.balanced:
        assert (
            result.balanced[p].std_over_mean
            <= result.unbalanced[p].std_over_mean + 1e-9
        )
