"""Record the ``threads`` backend's worker-scaling curve.

Runs the committed regression workload (the same one the speed and WAH
baselines gate) through the ``threads`` backend at a sweep of worker
counts and prints median wall-clock, speedup over one worker, and
stolen sub-lists per point.  The numbers are **recorded, not gated**:
scaling depends on the physical core count of the host, which CI
cannot pin, so the curve is evidence, not a pass/fail check — CI runs
this on its multi-core runner and the latest curve is transcribed into
``ROADMAP.md``.

Usage::

    PYTHONPATH=src python benchmarks/thread_scaling.py [--jobs 1 2 4 8]
"""

from __future__ import annotations

import argparse
import os
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from check_wah_baseline import WORKLOAD  # noqa: E402 — shared workload

from repro.core.generators import overlapping_cliques  # noqa: E402
from repro.engine import EnumerationConfig, EnumerationEngine  # noqa: E402

REPEATS = 3


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, nargs="+", default=[1, 2, 4, 8],
        help="worker counts to sweep (default: 1 2 4 8)",
    )
    args = parser.parse_args(argv)

    g, _ = overlapping_cliques(
        WORKLOAD["n"],
        WORKLOAD["clique_sizes"],
        WORKLOAD["overlap"],
        p=WORKLOAD["p"],
        seed=WORKLOAD["seed"],
    )
    engine = EnumerationEngine()
    print(f"host cpu_count={os.cpu_count()}  workload n={WORKLOAD['n']}")
    base = None
    reference = None
    for jobs in args.jobs:
        config = EnumerationConfig(
            k_min=WORKLOAD["k_min"],
            backend="threads",
            jobs=jobs,
            level_store="wah",
        )
        times = []
        for _ in range(REPEATS):
            t0 = time.perf_counter()
            result = engine.run(g, config)
            times.append(time.perf_counter() - t0)
        cliques = sorted(result.cliques)
        if reference is None:
            reference = cliques
        elif cliques != reference:
            raise SystemExit(f"clique set diverged at jobs={jobs}")
        median = statistics.median(times)
        if base is None:
            base = median
        print(
            f"jobs={jobs}: median {median:.4f}s  "
            f"speedup x{base / median:.2f}  "
            f"stolen sub-lists {result.transfers}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
