"""Setuptools shim.

Configuration lives in ``pyproject.toml``; this file exists so that
``python setup.py develop`` works in offline environments where pip's
PEP 517/660 build path is unavailable (no ``wheel`` package).
"""

from setuptools import setup

setup()
