"""Command-line front end for repro-lint.

Exit codes: 0 clean, 1 violations found, 2 usage error (argparse).
Human output is one ``path:line: [RLnnn] message`` header per finding
followed by the offending source line, mirroring a unified-diff hunk
closely enough that editors and CI annotations pick the locations up.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from tools.repro_lint.core import (
    Violation,
    all_rules,
    lint_project,
)


def _default_root() -> Path:
    """Walk up from cwd to the checkout root (pyproject.toml / .git)."""
    cwd = Path.cwd().resolve()
    for candidate in (cwd, *cwd.parents):
        if (candidate / "pyproject.toml").is_file() or (
            candidate / ".git"
        ).exists():
            return candidate
    return cwd


def _human(violations: list[Violation], root: Path) -> str:
    out: list[str] = []
    for v in violations:
        location = f"{v.path}:{v.line}" if v.line else v.path
        out.append(f"{location}: [{v.rule}] {v.message}")
        if v.line:
            source = root / v.path
            try:
                lines = source.read_text(
                    encoding="utf-8"
                ).splitlines()
            except OSError:
                lines = []
            if 1 <= v.line <= len(lines):
                out.append(f"    {lines[v.line - 1].strip()}")
    out.append("")
    noun = "violation" if len(violations) == 1 else "violations"
    out.append(f"{len(violations)} {noun}")
    return "\n".join(out)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based enforcement of the repo's cross-cutting "
            "contracts (config threading, metric-name authority, obs "
            "purity, lock discipline, level-store single-pass)."
        ),
    )
    parser.add_argument(
        "root",
        nargs="?",
        default=None,
        help="tree to lint (default: the enclosing checkout root)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name}")
            print(f"       {rule.description}")
        return 0

    root = (
        Path(args.root).resolve()
        if args.root is not None
        else _default_root()
    )
    if not root.is_dir():
        parser.error(f"not a directory: {root}")
    select = (
        [
            c.strip().upper()
            for c in args.select.split(",")
            if c.strip()
        ]
        if args.select
        else None
    )
    try:
        violations = lint_project(root, select=select)
    except ValueError as exc:  # unknown rule code
        parser.error(str(exc))

    if args.format == "json":
        print(
            json.dumps(
                {
                    "root": str(root),
                    "rules": [
                        r.code
                        for r in all_rules()
                        if select is None or r.code in select
                    ],
                    "violations": [v.to_dict() for v in violations],
                    "ok": not violations,
                },
                indent=2,
            )
        )
    else:
        if violations:
            print(_human(violations, root))
        else:
            print("repro-lint: clean")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
