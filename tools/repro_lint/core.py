"""The repro-lint core: sources, rule registry, suppressions.

A :class:`Project` wraps one repo checkout (or a test fixture tree that
mirrors its layout) and hands rules parsed ASTs on demand — each file is
read and parsed at most once per run.  A rule is a callable
``(project) -> list[Violation]`` registered under a stable ``RLnnn``
code via :func:`register_rule`; :func:`lint_project` runs a selection of
rules and filters the result through the per-line suppression comments.

Suppressions mirror the familiar linter convention::

    self._thread = start_thread()  # repro-lint: disable=RL004

A suppression comment on its own line applies to the next line, so a
flagged statement too long to share a line with a comment can still be
annotated.  ``disable=all`` suppresses every rule for that line.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "Violation",
    "Source",
    "Project",
    "Rule",
    "register_rule",
    "get_rule",
    "all_rules",
    "lint_project",
]

#: ``# repro-lint: disable=RL001,RL004`` (or ``disable=all``).
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,]+)"
)

#: a line that is *only* a suppression comment (applies to the next line).
_BARE_COMMENT_RE = re.compile(r"^\s*#")


@dataclass(frozen=True)
class Violation:
    """One finding: where, which rule, and what broke."""

    rule: str
    path: str  # project-relative, forward slashes
    line: int  # 1-based; 0 means "whole file / project"
    message: str

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


class Source:
    """One parsed python (or text) file, cached by the project."""

    def __init__(self, root: Path, relpath: str, text: str):
        self.root = root
        self.relpath = relpath
        self.text = text
        self.lines = text.splitlines()
        self._tree: ast.Module | None = None
        self._parse_error: SyntaxError | None = None

    @property
    def tree(self) -> ast.Module | None:
        """The parsed module, or ``None`` on a syntax error."""
        if self._tree is None and self._parse_error is None:
            try:
                self._tree = ast.parse(self.text, filename=self.relpath)
            except SyntaxError as exc:
                self._parse_error = exc
        return self._tree

    @property
    def parse_error(self) -> SyntaxError | None:
        self.tree  # noqa: B018 — force the parse attempt
        return self._parse_error

    def line_at(self, lineno: int) -> str:
        """The 1-based source line (empty string when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def suppressed_rules(self, lineno: int) -> set[str]:
        """Rule codes suppressed at ``lineno`` (own line or line above)."""
        codes: set[str] = set()
        for candidate in (lineno, lineno - 1):
            text = self.line_at(candidate)
            m = _SUPPRESS_RE.search(text)
            if m is None:
                continue
            # a trailing comment applies to its own line; a bare
            # comment line applies to the line *below* it only
            if candidate == lineno - 1 and not _BARE_COMMENT_RE.match(
                text
            ):
                continue
            codes.update(
                c.strip().upper() for c in m.group(1).split(",")
            )
        return codes


class Project:
    """One checkout (or fixture tree) the rules cross-reference.

    Rules address files by repo-relative path (``src/repro/engine/
    config.py``); a missing file returns ``None`` so each rule can
    decide whether absence is a violation (a layer deleted from a real
    tree) or simply out of scope (a minimal test fixture).
    """

    def __init__(self, root: str | Path):
        self.root = Path(root).resolve()
        self._sources: dict[str, Source | None] = {}

    def source(self, relpath: str) -> Source | None:
        """The cached :class:`Source` at ``relpath``, or ``None``."""
        if relpath not in self._sources:
            path = self.root / relpath
            if path.is_file():
                self._sources[relpath] = Source(
                    self.root, relpath, path.read_text(encoding="utf-8")
                )
            else:
                self._sources[relpath] = None
        return self._sources[relpath]

    def python_sources(self, subdir: str = "src") -> list[Source]:
        """Every ``*.py`` under ``subdir`` (the whole tree when absent).

        Test fixtures mirror the repo layout under a tiny ``src/``, so
        rules that sweep the package tree behave identically on both.
        """
        base = self.root / subdir
        if not base.is_dir():
            base = self.root
        sources = []
        for path in sorted(base.rglob("*.py")):
            rel = path.relative_to(self.root).as_posix()
            src = self.source(rel)
            if src is not None:
                sources.append(src)
        return sources


@dataclass(frozen=True)
class Rule:
    """One registered contract check."""

    code: str
    name: str
    description: str
    check: "callable" = field(repr=False)  # type: ignore[assignment]


_RULES: dict[str, Rule] = {}


def register_rule(code: str, name: str, description: str):
    """Decorator registering ``check(project) -> list[Violation]``."""

    def _register(fn):
        if code in _RULES:
            raise ValueError(f"rule {code} registered twice")
        _RULES[code] = Rule(
            code=code, name=name, description=description, check=fn
        )
        return fn

    return _register


def get_rule(code: str) -> Rule:
    _load_rules()
    try:
        return _RULES[code.upper()]
    except KeyError:
        raise ValueError(
            f"unknown rule {code!r}; known: {', '.join(sorted(_RULES))}"
        ) from None


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by code."""
    _load_rules()
    return [_RULES[c] for c in sorted(_RULES)]


def _load_rules() -> None:
    # rule modules self-register on import; imported lazily so `core`
    # stays importable from the rule modules themselves
    from tools.repro_lint import rules  # noqa: F401


def lint_project(
    root: str | Path, select: list[str] | None = None
) -> list[Violation]:
    """Run the selected rules (default: all) over one tree.

    Returns surviving violations sorted by (path, line, rule);
    suppression comments are applied here, so rules never need to know
    about them.
    """
    project = Project(root)
    rules = (
        all_rules()
        if not select
        else [get_rule(code) for code in select]
    )
    violations: list[Violation] = []
    for rule in rules:
        for v in rule.check(project):
            src = project.source(v.path)
            if src is not None and v.line:
                suppressed = src.suppressed_rules(v.line)
                if "ALL" in suppressed or v.rule in suppressed:
                    continue
            violations.append(v)
    return sorted(
        violations, key=lambda v: (v.path, v.line, v.rule, v.message)
    )


# -- shared AST helpers used by several rules --------------------------------


def attr_chain(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def self_attr(node: ast.AST) -> str | None:
    """``x`` when ``node`` is exactly ``self.x``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def const_str_tuple(node: ast.AST) -> tuple[str, ...] | None:
    """The values of a tuple/list literal of string constants."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    values = []
    for elt in node.elts:
        if not (
            isinstance(elt, ast.Constant) and isinstance(elt.value, str)
        ):
            return None
        values.append(elt.value)
    return tuple(values)


def module_constants(tree: ast.Module) -> dict[str, tuple[str, ...]]:
    """Module-level ``NAME = ("a", "b", ...)`` string-tuple constants."""
    out: dict[str, tuple[str, ...]] = {}
    for stmt in tree.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        const = const_str_tuple(value)
        if const is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                out[target.id] = const
    return out


def find_class(tree: ast.Module, name: str) -> ast.ClassDef | None:
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef) and stmt.name == name:
            return stmt
    return None


def find_function(
    body: list[ast.stmt], name: str
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    for stmt in body:
        if (
            isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name == name
        ):
            return stmt
    return None
