"""RL002 — metric-name authority.

``src/repro/obs/bridge.py`` owns the metric namespace: its
``METRIC_NAMES`` tuple is the single authority for every ``repro_*``
series the stats plane exports.  Two drifts are caught:

* a ``repro_*`` string literal passed to a registry constructor
  (``.counter(...)`` / ``.gauge(...)`` / ``.histogram(...)``) anywhere
  under ``src/`` that the manifest does not list — a metric invented
  outside the authority;
* the metric table in ``docs/ARCHITECTURE.md`` disagreeing with the
  manifest in either direction (a shipped metric undocumented, or a
  documented metric that no longer exists).

Names rendered at runtime through f-strings (the ``_COUNTER_FIELDS``
fold) cannot be checked statically; the test suite closes that gap by
asserting the rendered names are a subset of the manifest.
"""

from __future__ import annotations

import ast
import re

from tools.repro_lint.core import (
    Project,
    Violation,
    module_constants,
    register_rule,
)

BRIDGE = "src/repro/obs/bridge.py"
DOC = "docs/ARCHITECTURE.md"

_CONSTRUCTORS = {"counter", "gauge", "histogram"}

#: a metric token inside backticks in a ``|`` table row.
_BACKTICK_RE = re.compile(r"`([^`]*)`")
_METRIC_RE = re.compile(r"repro_[a-z0-9_]+")

#: label-template suffixes the docs table renders (``{k}``/``{status}``
#: placeholders) — stripped before comparing against the manifest.
_TEMPLATE_RE = re.compile(r"\{[a-z_]+\}")


def _doc_metric_names(text: str) -> dict[str, int]:
    """``{metric_name: first_lineno}`` from the docs metric table."""
    names: dict[str, int] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.lstrip()
        if not stripped.startswith("|"):
            continue
        # only the name cell (first column) declares a metric; prose in
        # later cells may mention other series without listing them
        first_cell = stripped.strip("|").split("|", 1)[0]
        for tick in _BACKTICK_RE.findall(first_cell):
            rendered = _TEMPLATE_RE.sub(" ", tick)
            for token in _METRIC_RE.findall(rendered):
                names.setdefault(token, lineno)
    return names


@register_rule(
    "RL002",
    "metric-name authority",
    "repro_* metric literals must come from the bridge METRIC_NAMES "
    "manifest, and the docs/ARCHITECTURE.md table must list exactly "
    "the manifest.",
)
def check(project: Project) -> list[Violation]:
    bridge = project.source(BRIDGE)
    if bridge is None or bridge.tree is None:
        return []  # no obs bridge: out of scope (fixture tree)
    violations: list[Violation] = []
    manifest = module_constants(bridge.tree).get("METRIC_NAMES")
    if manifest is None:
        violations.append(
            Violation(
                "RL002",
                BRIDGE,
                0,
                "bridge has no METRIC_NAMES manifest — the metric "
                "namespace needs one declared authority",
            )
        )
        return violations
    authority = set(manifest)

    for src in project.python_sources("src"):
        if src.tree is None:
            continue
        for node in ast.walk(src.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _CONSTRUCTORS
                and node.args
            ):
                continue
            first = node.args[0]
            if not (
                isinstance(first, ast.Constant)
                and isinstance(first.value, str)
            ):
                continue
            name = first.value
            if name.startswith("repro_") and name not in authority:
                violations.append(
                    Violation(
                        "RL002",
                        src.relpath,
                        node.lineno,
                        f"metric {name!r} is not in the bridge "
                        "METRIC_NAMES manifest — add it there (and to "
                        "the docs table) or reuse an existing series",
                    )
                )

    doc = project.source(DOC)
    if doc is None:
        violations.append(
            Violation(
                "RL002",
                DOC,
                0,
                "docs/ARCHITECTURE.md missing: the metric table must "
                "mirror the bridge METRIC_NAMES manifest",
            )
        )
        return violations
    documented = _doc_metric_names(doc.text)
    for name in sorted(authority - set(documented)):
        violations.append(
            Violation(
                "RL002",
                DOC,
                0,
                f"metric {name!r} is exported by the bridge but "
                "missing from the ARCHITECTURE.md metric table",
            )
        )
    for name in sorted(set(documented) - authority):
        violations.append(
            Violation(
                "RL002",
                DOC,
                documented[name],
                f"metric {name!r} is documented but not in the bridge "
                "METRIC_NAMES manifest — stale docs row?",
            )
        )
    return violations
