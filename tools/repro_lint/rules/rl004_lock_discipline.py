"""RL004 — lock discipline.

For every class that creates a lock (``self._lock = threading.Lock()``
or ``RLock()``), the set of *protected attributes* is inferred as the
``self.*`` attributes mutated somewhere inside a ``with self._lock:``
block.  Any other mutation of a protected attribute must also hold the
lock — a bare write to state that elsewhere needs the lock is exactly
the unserialised-shutdown class of race the scheduler/server fixes in
PR 4/7 chased down.

Recognised mutations: assignment / augmented assignment / ``del`` of
``self.x``, ``self.x[...]``, and ``self.x.y``, plus calls to the usual
container mutators (``self.x.append(...)``, ``.pop()``, ``.update()``,
…).  ``queue.Queue``'s ``put``/``get`` are deliberately *not* mutators
— the queue serialises itself, and hand-off outside the lock is the
established shutdown idiom.

Exemptions mirror repo conventions: ``__init__`` (object under
construction, not yet shared) and methods whose name ends in
``_locked`` (the caller-holds-the-lock helper convention, e.g.
``_prune_jobs_locked``).

Strict read discipline: for the modules named in
``_STRICT_READ_MODULES``, *reads* of protected attributes must hold
the lock too.  Mutation-only checking cannot see the torn-snapshot
class of bug (``ResultCache.fold_into`` once read three tallies a
worker could bump mid-read); read-side enforcement is opt-in per
module because it is only sound where every exported view is meant to
be a consistent snapshot.
"""

from __future__ import annotations

import ast

from tools.repro_lint.core import (
    Project,
    Violation,
    attr_chain,
    register_rule,
    self_attr,
)

_LOCK_FACTORIES = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "Lock",
    "RLock",
    "Condition",
}

#: modules (project-relative paths) under strict read discipline:
#: reads of protected attributes must hold the lock as well.
_STRICT_READ_MODULES = {"src/repro/service/cache.py"}

#: method names that mutate the common containers in place.
_MUTATOR_METHODS = {
    "append",
    "appendleft",
    "extend",
    "insert",
    "remove",
    "discard",
    "add",
    "clear",
    "pop",
    "popleft",
    "popitem",
    "update",
    "setdefault",
    "sort",
    "reverse",
}


def _mutated_self_attr(node: ast.AST) -> str | None:
    """The ``self.X`` root of a mutation target, else ``None``.

    Covers ``self.x``, ``self.x[...]`` and ``self.x.y`` targets.
    """
    if isinstance(node, ast.Subscript):
        node = node.value
    direct = self_attr(node)
    if direct is not None:
        return direct
    if isinstance(node, ast.Attribute):
        return self_attr(node.value)
    return None


def _flatten_targets(target: ast.expr) -> list[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[ast.expr] = []
        for elt in target.elts:
            out.extend(_flatten_targets(elt))
        return out
    if isinstance(target, ast.Starred):
        return _flatten_targets(target.value)
    return [target]


class _MutationVisitor(ast.NodeVisitor):
    """Collects ``(attr, lineno, locks_held)`` mutation and read records."""

    def __init__(self, lock_attrs: set[str]):
        self.lock_attrs = lock_attrs
        self.lock_stack: list[str] = []
        self.records: list[tuple[str, int, frozenset[str]]] = []
        self.reads: list[tuple[str, int, frozenset[str]]] = []

    def _record(self, attr: str | None, lineno: int) -> None:
        if attr is not None and attr not in self.lock_attrs:
            self.records.append(
                (attr, lineno, frozenset(self.lock_stack))
            )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # every `self.x` evaluated (Load context) is a read record;
        # mutation targets carry Store/Del contexts and stay out
        if isinstance(node.ctx, ast.Load):
            attr = self_attr(node)
            if attr is not None and attr not in self.lock_attrs:
                self.reads.append(
                    (attr, node.lineno, frozenset(self.lock_stack))
                )
        self.generic_visit(node)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        held = [
            attr
            for item in node.items
            if (attr := self_attr(item.context_expr)) is not None
            and attr in self.lock_attrs
        ]
        self.lock_stack.extend(held)
        self.generic_visit(node)
        del self.lock_stack[len(self.lock_stack) - len(held) :]

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            for leaf in _flatten_targets(target):
                self._record(_mutated_self_attr(leaf), node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record(_mutated_self_attr(node.target), node.lineno)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record(_mutated_self_attr(node.target), node.lineno)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record(_mutated_self_attr(target), node.lineno)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATOR_METHODS
        ):
            self._record(
                _mutated_self_attr(node.func.value), node.lineno
            )
        self.generic_visit(node)


def _lock_attrs(cls: ast.ClassDef) -> set[str]:
    locks: set[str] = set()
    for node in ast.walk(cls):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        attr = self_attr(node.targets[0])
        if attr is None or not isinstance(node.value, ast.Call):
            continue
        chain = attr_chain(node.value.func)
        if chain in _LOCK_FACTORIES:
            locks.add(attr)
    return locks


@register_rule(
    "RL004",
    "lock discipline",
    "In lock-owning classes, attributes mutated under the lock "
    "anywhere must be mutated under it everywhere (except __init__ "
    "and *_locked helpers).",
)
def check(project: Project) -> list[Violation]:
    violations: list[Violation] = []
    for src in project.python_sources("src"):
        if src.tree is None:
            continue
        for cls in src.tree.body:
            if not isinstance(cls, ast.ClassDef):
                continue
            locks = _lock_attrs(cls)
            if not locks:
                continue
            strict_reads = src.relpath in _STRICT_READ_MODULES
            per_method: dict[
                str, list[tuple[str, int, frozenset[str]]]
            ] = {}
            per_method_reads: dict[
                str, list[tuple[str, int, frozenset[str]]]
            ] = {}
            for stmt in cls.body:
                if not isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                visitor = _MutationVisitor(locks)
                visitor.visit(stmt)
                per_method[stmt.name] = visitor.records
                per_method_reads[stmt.name] = visitor.reads
            # protected attr -> the lock(s) seen guarding it
            protected: dict[str, set[str]] = {}
            for records in per_method.values():
                for attr, _lineno, held in records:
                    if held:
                        protected.setdefault(attr, set()).update(held)
            for method, records in per_method.items():
                if method == "__init__" or method.endswith("_locked"):
                    continue
                checks = [("mutates", records)]
                if strict_reads:
                    checks.append(("reads", per_method_reads[method]))
                for verb, recs in checks:
                    for attr, lineno, held in recs:
                        guards = protected.get(attr)
                        if guards and not (held & guards):
                            lock_names = "/".join(
                                f"self.{g}" for g in sorted(guards)
                            )
                            violations.append(
                                Violation(
                                    "RL004",
                                    src.relpath,
                                    lineno,
                                    f"{cls.name}.{method} {verb} "
                                    f"'{attr}' without holding "
                                    f"{lock_names} (other code paths "
                                    "mutate it under the lock)",
                                )
                            )
    return violations
