"""RL005 — single-pass level-store contract.

Every :class:`~repro.engine.level_store.LevelStore` implementation —
direct subclasses and virtual registrations via
``LevelStore.register(Cls)`` alike — must enforce the single-pass
contract: calling ``stream*()`` twice, or ``append*()`` after a stream
has started, raises ``LevelStoreError``.  The level loop's restart
semantics (and the disk store's spill-file reuse) rely on stores
failing loudly instead of silently yielding stale or truncated
candidate lists.

Mechanically: every public ``append*``/``stream*`` method on a store
class must contain a ``raise LevelStoreError(...)`` somewhere in its
body — the guard clause pattern all three shipped stores follow.
Private helpers (``_stream``) are the post-guard implementation and are
exempt.
"""

from __future__ import annotations

import ast

from tools.repro_lint.core import (
    Project,
    Violation,
    attr_chain,
    register_rule,
)

_BASE = "LevelStore"
_ERROR = "LevelStoreError"


def _is_store_method(name: str) -> bool:
    if name.startswith("_"):
        return False
    return (
        name == "append"
        or name.startswith("append_")
        or name == "stream"
        or name.startswith("stream_")
    )


def _raises_store_error(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> bool:
    for node in ast.walk(fn):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        chain = attr_chain(exc)
        if chain is not None and chain.rsplit(".", 1)[-1] == _ERROR:
            return True
    return False


@register_rule(
    "RL005",
    "single-pass store contract",
    "Every LevelStore implementation's append*/stream* methods must "
    "raise LevelStoreError to enforce single-pass streaming.",
)
def check(project: Project) -> list[Violation]:
    sources = [
        src for src in project.python_sources("src") if src.tree is not None
    ]
    # names registered virtually: LevelStore.register(Cls)
    registered: set[str] = set()
    for src in sources:
        for node in ast.walk(src.tree):
            if not (
                isinstance(node, ast.Call)
                and attr_chain(node.func) is not None
                and attr_chain(node.func).endswith(
                    f"{_BASE}.register"
                )
                and node.args
                and isinstance(node.args[0], ast.Name)
            ):
                continue
            registered.add(node.args[0].id)

    violations: list[Violation] = []
    for src in sources:
        for cls in src.tree.body:
            if not isinstance(cls, ast.ClassDef):
                continue
            direct = any(
                (chain := attr_chain(base)) is not None
                and chain.rsplit(".", 1)[-1] == _BASE
                for base in cls.bases
            )
            if not direct and cls.name not in registered:
                continue
            if cls.name == _BASE:
                continue  # the ABC itself defines the contract
            for stmt in cls.body:
                if not isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if not _is_store_method(stmt.name):
                    continue
                if not _raises_store_error(stmt):
                    violations.append(
                        Violation(
                            "RL005",
                            src.relpath,
                            stmt.lineno,
                            f"{cls.name}.{stmt.name} never raises "
                            f"{_ERROR} — the single-pass guard "
                            "(double-stream / append-after-stream) "
                            "is missing",
                        )
                    )
    return violations
