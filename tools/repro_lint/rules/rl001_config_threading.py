"""RL001 — config-threading completeness.

A *policy field* on :class:`~repro.engine.config.EnumerationConfig` is
a field whose ``__post_init__`` validates membership against a
module-level vocabulary tuple (``self.level_store not in LEVEL_STORES``
— the pattern every policy since PR 3 followed).  Each such field must
reach all six layers the engine/service stack threads policies through:

1. ``resolve_for_backend`` in ``src/repro/engine/config.py`` must read
   ``config.<field>`` (backend cross-validation);
2. ``EnumerationConfig.__hash__`` must include ``self.<field>`` (the
   config identity the service result cache keys on);
3. ``src/repro/cli.py`` must declare a ``--<field-with-dashes>`` flag;
4. ``src/repro/service/protocol.py`` must carry the field in
   ``_CONFIG_FIELDS`` (the wire payload);
5. ``Job.to_dict`` in ``src/repro/service/jobs.py`` must expose the
   field (listings/`repro jobs`);
6. ``BackendInfo`` in ``src/repro/engine/registry.py`` must advertise
   the supported values under the pluralised attribute
   (``level_store`` → ``level_stores``).

Additionally, ``ResultCache.key`` in ``src/repro/service/cache.py``
must key on the *whole* config object — a projection of hand-picked
fields would silently conflate runs whenever a policy field is added.

A missing field declaration is reported at the layer that lacks it; a
missing layer file on a tree that *has* the config module is itself a
violation (fixture trees without ``src/repro/engine/config.py`` are
simply out of scope).
"""

from __future__ import annotations

import ast

from tools.repro_lint.core import (
    Project,
    Violation,
    find_class,
    find_function,
    module_constants,
    register_rule,
    self_attr,
)

CONFIG = "src/repro/engine/config.py"
CLI = "src/repro/cli.py"
PROTOCOL = "src/repro/service/protocol.py"
JOBS = "src/repro/service/jobs.py"
REGISTRY = "src/repro/engine/registry.py"
CACHE = "src/repro/service/cache.py"

LAYERS = (CLI, PROTOCOL, JOBS, REGISTRY, CACHE)


def _policy_fields(
    cls: ast.ClassDef, constants: dict[str, tuple[str, ...]]
) -> dict[str, int]:
    """``{field: lineno}`` of vocabulary-validated policy fields."""
    post_init = find_function(cls.body, "__post_init__")
    if post_init is None:
        return {}
    fields: dict[str, int] = {}
    for node in ast.walk(post_init):
        if not isinstance(node, ast.Compare):
            continue
        attr = self_attr(node.left)
        if attr is None or len(node.ops) != 1:
            continue
        if not isinstance(node.ops[0], (ast.NotIn, ast.In)):
            continue
        comparator = node.comparators[0]
        if (
            isinstance(comparator, ast.Name)
            and comparator.id in constants
        ):
            fields.setdefault(attr, node.lineno)
    return fields


def _attrs_read_on(node: ast.AST, base: str) -> set[str]:
    """Attribute names read off ``<base>.<attr>`` anywhere in ``node``."""
    out: set[str] = set()
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Attribute)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == base
        ):
            out.add(sub.attr)
    return out


def _string_constants(tree: ast.AST) -> set[str]:
    return {
        node.value
        for node in ast.walk(tree)
        if isinstance(node, ast.Constant)
        and isinstance(node.value, str)
    }


def _check_cache_keys_whole_config(
    project: Project, violations: list[Violation]
) -> None:
    src = project.source(CACHE)
    if src is None or src.tree is None:
        violations.append(
            Violation(
                "RL001",
                CACHE,
                0,
                "cache layer missing: the service result cache "
                "(ResultCache) keys config identity",
            )
        )
        return
    cls = find_class(src.tree, "ResultCache")
    key_fn = find_function(cls.body, "key") if cls is not None else None
    if cls is None or key_fn is None:
        violations.append(
            Violation(
                "RL001",
                CACHE,
                0,
                "ResultCache.key not found: the config-identity keying "
                "contract cannot be verified",
            )
        )
        return
    # the config parameter (staticmethod: no self) must flow whole into
    # the returned key, so EnumerationConfig.__hash__/__eq__ — which
    # RL001 checks cover every policy field — stay the single identity
    params = [a.arg for a in key_fn.args.args if a.arg != "self"]
    config_param = params[-1] if params else None
    returns_config = False
    for node in ast.walk(key_fn):
        if isinstance(node, ast.Return) and node.value is not None:
            # ``config.backend`` / ``config["x"]`` are projections, not
            # the whole object — only a bare Name use counts
            projected = set()
            for sub in ast.walk(node.value):
                if isinstance(sub, (ast.Attribute, ast.Subscript)):
                    projected.add(id(sub.value))
            for sub in ast.walk(node.value):
                if (
                    isinstance(sub, ast.Name)
                    and sub.id == config_param
                    and id(sub) not in projected
                ):
                    returns_config = True
    if not returns_config:
        violations.append(
            Violation(
                "RL001",
                CACHE,
                key_fn.lineno,
                "ResultCache.key must key on the whole config object "
                "(its __hash__/__eq__ carry every policy field); a "
                "field projection would conflate distinct runs",
            )
        )


@register_rule(
    "RL001",
    "config-threading completeness",
    "Every EnumerationConfig policy field must reach validation, "
    "cache identity, the CLI, the wire protocol, Job.to_dict, and the "
    "BackendInfo advertisement.",
)
def check(project: Project) -> list[Violation]:
    src = project.source(CONFIG)
    if src is None or src.tree is None:
        return []  # no config module: out of scope (fixture tree)
    cls = find_class(src.tree, "EnumerationConfig")
    if cls is None:
        return []
    violations: list[Violation] = []
    constants = module_constants(src.tree)
    fields = _policy_fields(cls, constants)
    if not fields:
        violations.append(
            Violation(
                "RL001",
                CONFIG,
                cls.lineno,
                "no vocabulary-validated policy fields found on "
                "EnumerationConfig — the __post_init__ membership "
                "checks (`self.x not in XS`) are the pattern RL001 "
                "keys on",
            )
        )
        return violations

    # layer presence (a fixture tree missing the config module exited
    # above; from here on, a missing layer is a real break)
    missing_layer = set()
    for layer in LAYERS:
        layer_src = project.source(layer)
        if layer_src is None or layer_src.tree is None:
            missing_layer.add(layer)
            if layer != CACHE:  # cache reported by its own check below
                violations.append(
                    Violation(
                        "RL001",
                        layer,
                        0,
                        "config-threading layer missing or unparseable",
                    )
                )

    resolve = find_function(src.tree.body, "resolve_for_backend")
    resolve_reads = (
        _attrs_read_on(resolve, resolve.args.args[0].arg)
        if resolve is not None and resolve.args.args
        else set()
    )
    hash_fn = find_function(cls.body, "__hash__")
    hash_reads = (
        {
            self_attr(n)
            for n in ast.walk(hash_fn)
            if self_attr(n) is not None
        }
        if hash_fn is not None
        else set()
    )

    cli_src = project.source(CLI)
    cli_flags = (
        _string_constants(cli_src.tree)
        if CLI not in missing_layer
        else set()
    )
    proto_src = project.source(PROTOCOL)
    proto_fields: tuple[str, ...] = ()
    if PROTOCOL not in missing_layer:
        proto_fields = module_constants(proto_src.tree).get(
            "_CONFIG_FIELDS", ()
        )
    to_dict_keys: set[str] = set()
    jobs_src = project.source(JOBS)
    if JOBS not in missing_layer:
        job_cls = find_class(jobs_src.tree, "Job")
        to_dict = (
            find_function(job_cls.body, "to_dict")
            if job_cls is not None
            else None
        )
        if to_dict is not None:
            to_dict_keys = _string_constants(to_dict)
    registry_src = project.source(REGISTRY)
    backend_info_attrs: set[str] = set()
    if REGISTRY not in missing_layer:
        info_cls = find_class(registry_src.tree, "BackendInfo")
        if info_cls is not None:
            backend_info_attrs = {
                stmt.target.id
                for stmt in info_cls.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
            }

    for name, lineno in sorted(fields.items()):
        if resolve is None:
            violations.append(
                Violation(
                    "RL001",
                    CONFIG,
                    lineno,
                    f"policy field {name!r}: resolve_for_backend not "
                    "found for backend cross-validation",
                )
            )
        elif name not in resolve_reads:
            violations.append(
                Violation(
                    "RL001",
                    CONFIG,
                    resolve.lineno,
                    f"policy field {name!r} is never validated in "
                    "resolve_for_backend (backends must reject "
                    "unadvertised values before dispatch)",
                )
            )
        if hash_fn is None or name not in hash_reads:
            violations.append(
                Violation(
                    "RL001",
                    CONFIG,
                    hash_fn.lineno if hash_fn is not None else lineno,
                    f"policy field {name!r} missing from "
                    "EnumerationConfig.__hash__ — the service result "
                    "cache would conflate runs that differ only in it",
                )
            )
        flag = "--" + name.replace("_", "-")
        if CLI not in missing_layer and flag not in cli_flags:
            violations.append(
                Violation(
                    "RL001",
                    CLI,
                    0,
                    f"policy field {name!r} has no {flag} CLI flag",
                )
            )
        if PROTOCOL not in missing_layer and name not in proto_fields:
            violations.append(
                Violation(
                    "RL001",
                    PROTOCOL,
                    0,
                    f"policy field {name!r} missing from "
                    "_CONFIG_FIELDS — submit payloads would drop it "
                    "on the wire",
                )
            )
        if JOBS not in missing_layer and name not in to_dict_keys:
            violations.append(
                Violation(
                    "RL001",
                    JOBS,
                    0,
                    f"policy field {name!r} missing from Job.to_dict "
                    "— job listings could not show the policy",
                )
            )
        plural = name + "s"
        if (
            REGISTRY not in missing_layer
            and plural not in backend_info_attrs
        ):
            violations.append(
                Violation(
                    "RL001",
                    REGISTRY,
                    0,
                    f"policy field {name!r}: BackendInfo has no "
                    f"{plural!r} advertisement attribute",
                )
            )

    _check_cache_keys_whole_config(project, violations)
    return violations
