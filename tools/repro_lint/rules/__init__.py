"""Rule modules; importing this package registers every rule."""

from tools.repro_lint.rules import (  # noqa: F401
    rl001_config_threading,
    rl002_metric_names,
    rl003_obs_purity,
    rl004_lock_discipline,
    rl005_store_contract,
)
