"""RL003 — observability disabled-path purity.

The obs plane's whole-repo guarantee is that a disabled run touches no
metrics machinery: code outside ``src/repro/obs/`` reaches
observability only through the ambient accessors
(``get_observability()`` / ``NULL_TRACER``), which hand back shared
null objects.  Two anti-patterns break that:

* constructing ``MetricsRegistry()`` / ``Tracer()`` / ``Span()``
  directly — a private metrics island the stats plane never exports and
  the null path never elides;
* module-level span/event/observability calls — import-time side
  effects that run before (or regardless of) ``configure()``.

``serve()`` building the process-wide ``Observability`` and installing
it via ``set_observability`` is the sanctioned composition root, so
``Observability(...)`` construction is *not* flagged — only the raw
registry/tracer classes are.
"""

from __future__ import annotations

import ast

from tools.repro_lint.core import (
    Project,
    Violation,
    attr_chain,
    register_rule,
)

OBS_PREFIX = "src/repro/obs/"

_BANNED_CONSTRUCTORS = {"MetricsRegistry", "Tracer", "Span"}
_AMBIENT_CALLS = {"get_observability", "span", "event"}


def _module_level_nodes(tree: ast.Module):
    """Nodes executed at import time (skipping function bodies)."""
    stack: list[ast.AST] = list(tree.body)
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            # default args still evaluate at import time
            stack.extend(node.args.defaults)
            stack.extend(
                d for d in node.args.kw_defaults if d is not None
            )
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


@register_rule(
    "RL003",
    "obs disabled-path purity",
    "Outside src/repro/obs/, observability is reached only through "
    "get_observability()/NULL_TRACER inside functions — no direct "
    "MetricsRegistry/Tracer construction, no import-time spans.",
)
def check(project: Project) -> list[Violation]:
    violations: list[Violation] = []
    for src in project.python_sources("src"):
        if src.relpath.startswith(OBS_PREFIX) or src.tree is None:
            continue
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if chain is None:
                continue
            tail = chain.rsplit(".", 1)[-1]
            if tail in _BANNED_CONSTRUCTORS:
                violations.append(
                    Violation(
                        "RL003",
                        src.relpath,
                        node.lineno,
                        f"direct {tail}() construction outside "
                        "repro.obs — use get_observability() (or "
                        "NULL_TRACER) so the disabled path stays a "
                        "shared null object",
                    )
                )
        for node in _module_level_nodes(src.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if chain is None:
                continue
            tail = chain.rsplit(".", 1)[-1]
            if tail in _AMBIENT_CALLS:
                violations.append(
                    Violation(
                        "RL003",
                        src.relpath,
                        node.lineno,
                        f"module-level {tail}() call — observability "
                        "must be resolved inside functions so imports "
                        "stay side-effect free and configure() wins",
                    )
                )
    return violations
