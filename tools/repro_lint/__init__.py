"""repro-lint: AST-based enforcement of the repo's cross-cutting contracts.

Every PR since the engine unification has hand-threaded the same
invariants: a new :class:`~repro.engine.config.EnumerationConfig` policy
field must reach six layers (validation, cache identity, CLI, wire
protocol, ``Job.to_dict``, ``BackendInfo``); metric names must stay in
lockstep with the :mod:`repro.obs.bridge` authority and the
``docs/ARCHITECTURE.md`` table; the observability disabled path must
stay allocation-free; shared mutable state must stay behind its lock;
level stores must enforce the single-pass contract.  ``repro-lint``
checks all of that mechanically from the ASTs, so the completeness the
paper's byte-identical-results claim rests on is verified at review
time instead of discovered in production.

Usage::

    python -m tools.repro_lint [--format json] [--select RL001,...]
    repro-lint            # console entry point (installed)

Rules live in :mod:`tools.repro_lint.rules`; each registers itself with
the registry in :mod:`tools.repro_lint.core`.  Suppress one finding
with a ``# repro-lint: disable=RL004`` comment on (or directly above)
the flagged line.  See ``docs/STATIC_ANALYSIS.md`` for the rule
catalogue and rationale.
"""

from tools.repro_lint.core import (
    Project,
    Rule,
    Violation,
    all_rules,
    get_rule,
    lint_project,
    register_rule,
)

__version__ = "1.0.0"

__all__ = [
    "Project",
    "Rule",
    "Violation",
    "all_rules",
    "get_rule",
    "lint_project",
    "register_rule",
    "__version__",
]
