"""Link checker for the repo's Markdown docs.

Walks the given Markdown files (and any ``docs/*.md`` they link to),
extracts every ``[text](target)`` and reference-style link, and fails
when a *local* target does not exist — a renamed module, a moved
baseline file, or a deleted doc breaks CI instead of silently rotting.
``#anchor`` fragments are checked against the target file's headings
(GitHub slug rules: lowercase, spaces to dashes, punctuation dropped).

External ``http(s)``/``mailto`` links are *not* fetched (CI must not
depend on the network); they are only syntax-checked.

Usage::

    python tools/check_doc_links.py README.md docs/*.md
"""

from __future__ import annotations

import functools
import re
import sys
from pathlib import Path

#: inline [text](target) — stops at the first unescaped closing paren.
_INLINE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: fenced code blocks are stripped first: examples are not links.
_FENCE = re.compile(r"```.*?```", re.S)
#: inline code spans likewise.
_CODE = re.compile(r"`[^`]*`")


def _slugify(heading: str) -> str:
    """GitHub's anchor slug: lowercase, strip formatting markers and
    punctuation (keeping word chars incl. underscores), dash spaces."""
    text = re.sub(r"[`*]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return re.sub(r"[ ]", "-", text)


@functools.lru_cache(maxsize=None)
def _headings(path: Path) -> set[str]:
    slugs: set[str] = set()
    seen: dict[str, int] = {}
    body = _FENCE.sub("", path.read_text(encoding="utf-8"))
    for line in body.splitlines():
        m = re.match(r"#{1,6}\s+(.*)", line)
        if not m:
            continue
        slug = _slugify(m.group(1))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        slugs.add(slug if count == 0 else f"{slug}-{count}")
    return slugs


def check_file(path: Path, repo_root: Path) -> list[str]:
    """All broken local links of one Markdown file."""
    errors: list[str] = []
    body = _FENCE.sub("", path.read_text(encoding="utf-8"))
    body = _CODE.sub("", body)
    for target in _INLINE.findall(body):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if target[1:] not in _headings(path):
                errors.append(f"{path}: missing anchor {target!r}")
            continue
        rel, _, anchor = target.partition("#")
        dest = (path.parent / rel).resolve()
        if not dest.exists():
            errors.append(f"{path}: broken link {target!r} -> {dest}")
            continue
        if anchor and dest.suffix == ".md":
            if anchor not in _headings(dest):
                errors.append(
                    f"{path}: missing anchor {anchor!r} in {rel}"
                )
        try:
            dest.relative_to(repo_root)
        except ValueError:
            errors.append(f"{path}: link escapes the repo: {target!r}")
    return errors


def main(argv: list[str]) -> int:
    if not argv:
        print(
            "usage: check_doc_links.py FILE.md [FILE.md ...]",
            file=sys.stderr,
        )
        return 2
    repo_root = Path(__file__).resolve().parent.parent
    errors: list[str] = []
    checked = 0
    for arg in argv:
        path = Path(arg)
        if not path.exists():
            errors.append(f"{path}: file not found")
            continue
        checked += 1
        errors.extend(check_file(path, repo_root))
    if errors:
        print("broken documentation links:", file=sys.stderr)
        for err in errors:
            print(f"  {err}", file=sys.stderr)
        return 1
    print(f"doc links ok across {checked} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
