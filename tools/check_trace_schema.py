"""Schema gate for trace JSONL files written by ``repro serve --trace``.

Each line must be a standalone JSON object carrying every key in
:data:`repro.obs.trace.REQUIRED_KEYS` with the right shape:

* ``ts`` — non-negative epoch float;
* ``kind`` — ``"span"`` or ``"event"``;
* ``name`` — non-empty string;
* ``thread`` — string thread name;
* ``depth`` — non-negative int;
* ``fields`` — JSON object (possibly empty);
* spans additionally carry ``dur_s >= 0``; events must *not* carry
  ``dur_s`` (the distinction is the schema, not a convention).

CI runs this over the trace file produced by the service smoke so the
wire format ``repro trace --file`` and external tooling parse cannot
drift silently.

Usage::

    python tools/check_trace_schema.py trace.jsonl [more.jsonl ...]

Exits non-zero on the first malformed file, printing one line per
violation (``path:lineno: problem``).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.trace import REQUIRED_KEYS  # noqa: E402

_KINDS = ("span", "event")


def check_record(record: object) -> list[str]:
    """All schema violations in one decoded JSONL record."""
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, not an object"]
    problems = []
    for key in REQUIRED_KEYS:
        if key not in record:
            problems.append(f"missing required key {key!r}")
    kind = record.get("kind")
    if "kind" in record and kind not in _KINDS:
        problems.append(f"kind {kind!r} is not one of {_KINDS}")
    if "ts" in record:
        if not isinstance(record["ts"], (int, float)) or record["ts"] < 0:
            problems.append(
                f"ts {record['ts']!r} is not a non-negative number"
            )
    if "name" in record:
        if not isinstance(record["name"], str) or not record["name"]:
            problems.append(
                f"name {record['name']!r} is not a non-empty string"
            )
    if "thread" in record and not isinstance(record["thread"], str):
        problems.append(f"thread {record['thread']!r} is not a string")
    if "depth" in record:
        depth = record["depth"]
        if not isinstance(depth, int) or isinstance(depth, bool) or depth < 0:
            problems.append(f"depth {depth!r} is not a non-negative int")
    if "fields" in record and not isinstance(record["fields"], dict):
        problems.append(f"fields {record['fields']!r} is not an object")
    if kind == "span":
        dur = record.get("dur_s")
        if not isinstance(dur, (int, float)) or dur < 0:
            problems.append(f"span dur_s {dur!r} is not a non-negative number")
    elif kind == "event" and "dur_s" in record:
        problems.append("event carries dur_s (spans only)")
    return problems


def check_file(path: Path) -> list[str]:
    """``path:lineno: problem`` strings for every violation in a file."""
    violations = []
    lines = path.read_text().splitlines()
    if not lines:
        violations.append(f"{path}: file is empty (no trace records)")
        return violations
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            violations.append(f"{path}:{lineno}: blank line inside JSONL")
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            violations.append(f"{path}:{lineno}: invalid JSON ({exc})")
            continue
        for problem in check_record(record):
            violations.append(f"{path}:{lineno}: {problem}")
    return violations


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__.strip().splitlines()[-4].strip(), file=sys.stderr)
        return 2
    failed = False
    for arg in argv:
        path = Path(arg)
        if not path.is_file():
            print(f"{path}: no such file", file=sys.stderr)
            failed = True
            continue
        violations = check_file(path)
        for violation in violations:
            print(violation, file=sys.stderr)
        if violations:
            failed = True
        else:
            n = len(path.read_text().splitlines())
            print(f"{path}: {n} records ok")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
