"""Repo tooling namespace (``python -m tools.repro_lint``)."""
